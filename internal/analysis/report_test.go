package analysis

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureResult loads one fixture package and runs one analyzer, returning
// the full Result for report-layer tests.
func fixtureResult(t *testing.T, rule string, cfg *Config, dir string) (*Result, string) {
	t.Helper()
	a := ByName(rule)
	if a == nil {
		t.Fatalf("unknown rule %q", rule)
	}
	if cfg == nil {
		cfg = DefaultConfig()
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags, sups := analyze(loader.Fset, []*Package{pkg}, []*Analyzer{a}, cfg)
	base, err := filepath.Abs(".")
	if err != nil {
		t.Fatalf("Abs: %v", err)
	}
	return &Result{Fset: loader.Fset, Diags: diags, Suppressions: sups}, base
}

func TestJSONReport(t *testing.T) {
	res, base := fixtureResult(t, "hotpath", nil, "testdata/src/hotpath")
	rep := BuildReport(res, base)
	if len(rep.Findings) == 0 {
		t.Fatal("no findings in hotpath fixture")
	}
	if len(rep.Suppressions) == 0 {
		t.Fatal("hotpath fixture carries suppressions, none reported")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Tool != "abcdlint" || len(back.Findings) != len(rep.Findings) {
		t.Fatalf("round-trip mismatch: tool=%q findings=%d want %d", back.Tool, len(back.Findings), len(rep.Findings))
	}
	// The transitive hotpath finding must carry its call chain, root first
	// with no call site, hops with resolved sites.
	var chained *Finding
	for i := range back.Findings {
		if len(back.Findings[i].Chain) > 1 {
			chained = &back.Findings[i]
			break
		}
	}
	if chained == nil {
		t.Fatal("no finding carries a multi-hop chain")
	}
	if chained.Chain[0].Func == "" || chained.Chain[0].File != "" {
		t.Errorf("chain root should name the annotated function with no call site: %+v", chained.Chain[0])
	}
	last := chained.Chain[len(chained.Chain)-1]
	if last.File == "" || last.Line == 0 {
		t.Errorf("chain hop lacks a resolved call site: %+v", last)
	}
}

// TestSARIFShape pins the SARIF 2.1.0 envelope GitHub code scanning
// consumes: version, $schema, tool.driver with rules, and results with
// ruleId, message.text, and a physical location with a region.
func TestSARIFShape(t *testing.T) {
	res, base := fixtureResult(t, "hotpath", nil, "testdata/src/hotpath")
	rep := BuildReport(res, base)
	var buf bytes.Buffer
	if err := rep.WriteSARIF(&buf, All()); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v := log["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	if s, _ := log["$schema"].(string); !strings.Contains(s, "sarif-2.1.0") {
		t.Errorf("$schema = %v, want a sarif-2.1.0 schema URI", log["$schema"])
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one", log["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "abcdlint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != len(All()) {
		t.Errorf("driver rules = %d, want %d", len(rules), len(All()))
	}
	results, ok := run["results"].([]any)
	if !ok || len(results) != len(rep.Findings) {
		t.Fatalf("results = %d, want %d", len(results), len(rep.Findings))
	}
	sawCodeFlow := false
	for _, r := range results {
		res := r.(map[string]any)
		ruleID, _ := res["ruleId"].(string)
		if !strings.HasPrefix(ruleID, "abcdlint/") {
			t.Errorf("ruleId = %q, want abcdlint/ prefix", ruleID)
		}
		if msg := res["message"].(map[string]any)["text"].(string); msg == "" {
			t.Error("result with empty message.text")
		}
		locs := res["locations"].([]any)
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		if uri := phys["artifactLocation"].(map[string]any)["uri"].(string); uri == "" || strings.HasPrefix(uri, "/") {
			t.Errorf("artifactLocation.uri = %q, want a relative path", uri)
		}
		if line := phys["region"].(map[string]any)["startLine"].(float64); line < 1 {
			t.Errorf("region.startLine = %v", line)
		}
		if _, ok := res["codeFlows"]; ok {
			sawCodeFlow = true
		}
	}
	if !sawCodeFlow {
		t.Error("no result carries a codeFlow despite transitive hotpath findings")
	}
}

func TestBaseline(t *testing.T) {
	res, base := fixtureResult(t, "hotpath", nil, "testdata/src/hotpath")
	rep := BuildReport(res, base)
	if len(rep.Findings) == 0 {
		t.Fatal("no findings to baseline")
	}

	// A baseline built from the report grandfathers everything.
	b := BaselineFromReport(rep)
	if fresh := b.Apply(rep); fresh != 0 {
		t.Errorf("self-baseline left %d fresh finding(s)", fresh)
	}
	for _, f := range rep.Findings {
		if !f.Grandfathered {
			t.Errorf("finding not grandfathered by self-baseline: %s", f.Message)
		}
	}

	// Round-trip through disk.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	rep2 := BuildReport(res, base)
	if fresh := loaded.Apply(rep2); fresh != 0 {
		t.Errorf("disk round-trip left %d fresh finding(s)", fresh)
	}

	// A finding not in the baseline stays fresh; multiset semantics mean a
	// duplicate of a known finding is fresh too.
	rep3 := BuildReport(res, base)
	rep3.Findings = append(rep3.Findings,
		Finding{Rule: "hotpath", File: "new.go", Line: 1, Message: "brand new"},
		rep3.Findings[0])
	if fresh := loaded.Apply(rep3); fresh != 2 {
		t.Errorf("fresh = %d, want 2 (one new, one duplicate beyond budget)", fresh)
	}

	// A missing baseline file is empty, not an error.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("LoadBaseline(absent): %v", err)
	}
	rep4 := BuildReport(res, base)
	if fresh := empty.Apply(rep4); fresh != len(rep4.Findings) {
		t.Errorf("empty baseline grandfathered something: fresh=%d want %d", fresh, len(rep4.Findings))
	}
}
