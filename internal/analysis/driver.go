package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Run loads every package named by patterns (relative to dir), applies the
// given analyzers, filters suppressed findings, and returns the surviving
// diagnostics sorted by position. The returned FileSet resolves their
// positions.
func Run(dir string, patterns []string, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, *token.FileSet, error) {
	res, err := RunResult(dir, patterns, analyzers, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.Diags, res.Fset, nil
}

// Result is a full analysis outcome: the surviving findings plus the
// suppression inventory, for the machine-readable reports and the
// -ignored audit.
type Result struct {
	Fset  *token.FileSet
	Diags []Diagnostic
	// Suppressions is every well-formed //abcdlint:ignore comment in the
	// scanned packages, in position order.
	Suppressions []Suppression
}

// Suppression is one parsed //abcdlint:ignore comment.
type Suppression struct {
	Pos    token.Pos
	Rules  []string
	Reason string
}

// RunResult is Run with the suppression inventory included.
func RunResult(dir string, patterns []string, analyzers []*Analyzer, cfg *Config) (*Result, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, sups := analyze(loader.Fset, pkgs, analyzers, cfg)
	return &Result{Fset: loader.Fset, Diags: diags, Suppressions: sups}, nil
}

// Analyze applies analyzers to already-loaded packages, returning the
// unsuppressed diagnostics in position order.
func Analyze(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	diags, _ := analyze(fset, pkgs, analyzers, cfg)
	return diags
}

// analyze is the shared core: collect suppressions first (interprocedural
// analyzers honor them as propagation boundaries), run the analyzers,
// filter, sort.
func analyze(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, []Suppression) {
	sup, supList := collectSuppressions(fset, pkgs)
	suppressedAt := func(pos token.Pos, rule string) bool {
		return sup.suppressedAt(fset, pos, rule)
	}
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Fset: fset, Pkgs: pkgs, Config: cfg, Report: report, SuppressedAt: suppressedAt})
			continue
		}
		for _, pkg := range pkgs {
			a.Run(&Pass{Fset: fset, Pkg: pkg, Config: cfg, Report: report})
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressedAt(fset, d.Pos, d.Rule) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Rule < kept[j].Rule
	})
	sort.Slice(supList, func(i, j int) bool { return supList[i].Pos < supList[j].Pos })
	return kept, supList
}

// suppressions maps file -> line -> rules suppressed on that line.
type suppressions map[string]map[int][]string

// collectSuppressions gathers every well-formed
// "//abcdlint:ignore rules -- reason" comment. A malformed suppression
// (missing rule list or missing reason) is ignored, so the finding it was
// meant to silence still surfaces.
func collectSuppressions(fset *token.FileSet, pkgs []*Package) (suppressions, []Suppression) {
	sup := make(suppressions)
	var list []Suppression
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rules, reason, ok := parseSuppression(c.Text)
					if !ok {
						continue
					}
					list = append(list, Suppression{Pos: c.Pos(), Rules: rules, Reason: reason})
					pos := fset.Position(c.Pos())
					byLine := sup[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						sup[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], rules...)
				}
			}
		}
	}
	return sup, list
}

// parseSuppression extracts the rule list and reason from one comment,
// requiring the "-- reason" tail.
func parseSuppression(text string) ([]string, string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "abcdlint:ignore")
	if !ok {
		return nil, "", false
	}
	ruleParts, reason, ok := strings.Cut(rest, "--")
	reason = strings.TrimSpace(reason)
	if !ok || reason == "" {
		return nil, "", false
	}
	var rules []string
	for _, r := range strings.Split(ruleParts, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules, reason, len(rules) > 0
}

// suppressedAt reports whether a suppression for rule covers pos: one on
// the same line or the line directly above.
func (s suppressions) suppressedAt(fset *token.FileSet, pos token.Pos, rule string) bool {
	p := fset.Position(pos)
	byLine := s[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, r := range byLine[line] {
			if r == rule || r == "all" {
				return true
			}
		}
	}
	return false
}

// FormatDiagnostic renders one finding as "file:line:col: [rule] message",
// with the file path relative to base when possible.
func FormatDiagnostic(fset *token.FileSet, base string, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: [%s] %s", relPath(base, pos.Filename), pos.Line, pos.Column, d.Rule, d.Message)
}

// relPath renders name relative to base when it is inside base.
func relPath(base, name string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return filepath.ToSlash(name)
}

// ---- shared AST helpers used by several analyzers ----

// unparen strips any number of parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// parentMap records the parent of every node in a file, for upward
// classification of how an expression is used.
type parentMap map[ast.Node]ast.Node

func buildParents(files []*ast.File) parentMap {
	parents := make(parentMap)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}
