package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Run loads every package named by patterns (relative to dir), applies the
// given analyzers, filters suppressed findings, and returns the surviving
// diagnostics sorted by position. The returned FileSet resolves their
// positions.
func Run(dir string, patterns []string, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, *token.FileSet, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	dirs, err := loader.ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return nil, nil, fmt.Errorf("loading %s: %w", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags := Analyze(loader.Fset, pkgs, analyzers, cfg)
	return diags, loader.Fset, nil
}

// Analyze applies analyzers to already-loaded packages, returning the
// unsuppressed diagnostics in position order.
func Analyze(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Fset: fset, Pkgs: pkgs, Config: cfg, Report: report})
			continue
		}
		for _, pkg := range pkgs {
			a.Run(&Pass{Fset: fset, Pkg: pkg, Config: cfg, Report: report})
		}
	}
	sup := collectSuppressions(fset, pkgs)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Rule < kept[j].Rule
	})
	return kept
}

// suppressions maps file -> line -> rules suppressed on that line.
type suppressions map[string]map[int][]string

// collectSuppressions gathers every well-formed
// "//abcdlint:ignore rules -- reason" comment. A malformed suppression
// (missing rule list or missing reason) is ignored, so the finding it was
// meant to silence still surfaces.
func collectSuppressions(fset *token.FileSet, pkgs []*Package) suppressions {
	sup := make(suppressions)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rules, ok := parseSuppression(c.Text)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					byLine := sup[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						sup[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], rules...)
				}
			}
		}
	}
	return sup
}

// parseSuppression extracts the rule list from one comment, requiring the
// "-- reason" tail.
func parseSuppression(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "abcdlint:ignore")
	if !ok {
		return nil, false
	}
	ruleParts, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		return nil, false
	}
	var rules []string
	for _, r := range strings.Split(ruleParts, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules, len(rules) > 0
}

// suppressed reports whether d is covered by a suppression on its line or
// the line directly above.
func (s suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, rule := range byLine[line] {
			if rule == d.Rule || rule == "all" {
				return true
			}
		}
	}
	return false
}

// FormatDiagnostic renders one finding as "file:line:col: [rule] message",
// with the file path relative to base when possible.
func FormatDiagnostic(fset *token.FileSet, base string, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	name := pos.Filename
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", filepath.ToSlash(name), pos.Line, pos.Column, d.Rule, d.Message)
}

// ---- shared AST helpers used by several analyzers ----

// unparen strips any number of parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// parentMap records the parent of every node in a file, for upward
// classification of how an expression is used.
type parentMap map[ast.Node]ast.Node

func buildParents(files []*ast.File) parentMap {
	parents := make(parentMap)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}
