package analysis

import (
	"go/ast"
	"go/types"
)

// This file builds the package-level call graph the interprocedural
// analyzers (hotalloc, hotpath) share. The graph is computed once per
// module pass over the go/types-checked ASTs:
//
//   - one node per declared function or method with a body;
//   - one edge per call expression, carrying the call site and whether it
//     sits lexically inside a for/range loop (function literals inherit
//     the enclosing declaration's loop context, since they run on the same
//     path when invoked there);
//   - direct and method calls resolve to their static callee; calls
//     through an interface fan out, class-hierarchy style, to every
//     scanned concrete method with the same name and arity. That
//     over-approximates dynamic dispatch — deliberately: a missed hot-path
//     violation is worse than a suppressible false positive.
//
// Calls into packages outside the scanned set (the standard library) have
// no node and terminate propagation; the analyzers' own classifiers
// (allocMessage, hotPathMutexCall) decide what to say about such leaves.

// cgEdge is one resolved call: caller -> callee at a specific site.
type cgEdge struct {
	callee *types.Func
	site   *ast.CallExpr
	inLoop bool
}

// cgNode is one declared function in the scanned module.
type cgNode struct {
	obj   *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	edges []cgEdge
}

// callGraph indexes the scanned module's functions and call edges.
type callGraph struct {
	funcs map[*types.Func]*cgNode
	// methodsByName indexes concrete methods for interface-call fan-out.
	methodsByName map[string][]*types.Func
}

// buildCallGraph constructs the graph over every package in the pass.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{
		funcs:         make(map[*types.Func]*cgNode),
		methodsByName: make(map[string][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.funcs[obj] = &cgNode{obj: obj, decl: fd, pkg: pkg}
				if fd.Recv != nil {
					g.methodsByName[fd.Name.Name] = append(g.methodsByName[fd.Name.Name], obj)
				}
			}
		}
	}
	for _, n := range g.funcs {
		g.collectEdges(n)
	}
	return g
}

// collectEdges walks one function body recording resolved call edges and
// whether each call site is inside a loop.
func (g *callGraph) collectEdges(node *cgNode) {
	info := node.pkg.Info
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			if n.Init != nil {
				walk(n.Init, inLoop)
			}
			if n.Cond != nil {
				walk(n.Cond, inLoop)
			}
			if n.Post != nil {
				walk(n.Post, inLoop)
			}
			walk(n.Body, true)
			return
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walk(n.Body, true)
			return
		case *ast.CallExpr:
			for _, callee := range g.resolveCallees(info, n) {
				node.edges = append(node.edges, cgEdge{callee: callee, site: n, inLoop: inLoop})
			}
		}
		// Generic descent.
		children(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(node.decl.Body, false)
}

// resolveCallees maps a call expression to the function objects it may
// invoke: the static callee for direct and method calls, or — for calls
// through an interface — every scanned concrete method with the same name
// and arity.
func (g *callGraph) resolveCallees(info *types.Info, call *ast.CallExpr) []*types.Func {
	var fn *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ = info.Uses[id].(*types.Func)
		}
	}
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
		// Interface dispatch: fan out by name and arity. Type-parameter
		// substitution preserves arity, so this stays sound for generic
		// interfaces like bcd.Program[V, M], where types.Implements cannot
		// relate a concrete program to the parameterized interface.
		var out []*types.Func
		for _, m := range g.methodsByName[fn.Name()] {
			msig := m.Type().(*types.Signature)
			if msig.Params().Len() == sig.Params().Len() && msig.Recv() != nil && !types.IsInterface(msig.Recv().Type()) {
				out = append(out, m)
			}
		}
		return out
	}
	return []*types.Func{fn}
}
