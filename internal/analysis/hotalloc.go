package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc guards the engine's per-edge and per-vertex inner loops against
// hidden allocation. GraphABCD's throughput story (Sec. IV-A1: the GATHER
// pipeline sustains one edge per cycle) survives in software only if the
// hot loops are allocation-free: a make/append/fmt call per edge turns the
// streaming loops into GC pressure. The analyzer seeds a call-graph
// reachability walk at the configured hot roots (Config.HotRoots); inside
// a root it flags allocation sites lexically inside loops, and in any
// function reachable from such a loop it flags allocation sites anywhere.
// Calls through interfaces are resolved by name+arity over the scanned
// packages (class-hierarchy style), which over-approximates — suppress
// deliberate amortized allocations with a reason.
//
// Flagged: make, new, append, any call into package fmt, and the
// word.Array Load/Store/Fill convenience methods, whose documentation
// already directs hot paths to LoadBuf/StoreBuf.
var HotAlloc = &Analyzer{
	Name:      hotAllocName,
	Doc:       "flags allocating operations reachable from the engine's hot loops",
	RunModule: runHotAlloc,
}

// haFunc is one declared function in the scanned module.
type haFunc struct {
	obj    *types.Func
	decl   *ast.FuncDecl
	pkg    *Package
	isRoot bool
	// callsInLoop / callsOutside hold resolved callee objects, split by
	// whether the call site sits inside a for/range statement.
	callsInLoop  []*types.Func
	callsOutside []*types.Func
}

func runHotAlloc(pass *ModulePass) {
	funcs := make(map[*types.Func]*haFunc)
	methodsByName := make(map[string][]*types.Func) // concrete methods, for interface-call resolution

	// Pass 1: index every declared function and concrete method.
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				hf := &haFunc{obj: obj, decl: fd, pkg: pkg, isRoot: isHotRoot(pass.Config, pkg, fd)}
				funcs[obj] = hf
				if fd.Recv != nil {
					methodsByName[fd.Name.Name] = append(methodsByName[fd.Name.Name], obj)
				}
			}
		}
	}

	// Pass 2: record call edges with loop context.
	for _, hf := range funcs {
		collectCalls(hf, methodsByName)
	}

	// Pass 3: reachability. From a root only loop-resident calls
	// propagate; from anything reached, every call propagates.
	reached := make(map[*types.Func]bool)
	var queue []*types.Func
	enqueue := func(objs []*types.Func) {
		for _, o := range objs {
			if !reached[o] {
				reached[o] = true
				queue = append(queue, o)
			}
		}
	}
	for _, hf := range funcs {
		if hf.isRoot {
			enqueue(hf.callsInLoop)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		if hf, ok := funcs[obj]; ok {
			enqueue(hf.callsInLoop)
			enqueue(hf.callsOutside)
		}
	}

	// Pass 4: flag allocation sites. Roots: loops only. Reached: anywhere.
	for _, hf := range funcs {
		switch {
		case hf.isRoot:
			flagAllocs(pass, hf, true)
		case reached[hf.obj]:
			flagAllocs(pass, hf, false)
		}
	}
}

// isHotRoot matches a declaration against Config.HotRoots "pkg:func"
// patterns (import-path suffix plus function name).
func isHotRoot(cfg *Config, pkg *Package, fd *ast.FuncDecl) bool {
	for _, pat := range cfg.HotRoots {
		pkgPat, funcPat, ok := strings.Cut(pat, ":")
		if !ok {
			continue
		}
		if fd.Name.Name == funcPat && strings.HasSuffix(pkg.ImportPath, pkgPat) {
			return true
		}
	}
	return false
}

// collectCalls walks one function body recording resolved call edges and
// whether each call site is inside a loop. Function literals inherit the
// enclosing function's loop context.
func collectCalls(hf *haFunc, methodsByName map[string][]*types.Func) {
	info := hf.pkg.Info
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			if n.Init != nil {
				walk(n.Init, inLoop)
			}
			if n.Cond != nil {
				walk(n.Cond, inLoop)
			}
			if n.Post != nil {
				walk(n.Post, inLoop)
			}
			walk(n.Body, true)
			return
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walk(n.Body, true)
			return
		case *ast.CallExpr:
			for _, callee := range resolveCallees(info, n, methodsByName) {
				if inLoop {
					hf.callsInLoop = append(hf.callsInLoop, callee)
				} else {
					hf.callsOutside = append(hf.callsOutside, callee)
				}
			}
		}
		// Generic descent.
		children(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(hf.decl.Body, false)
}

// children invokes fn on the direct children of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// resolveCallees maps a call expression to the function objects it may
// invoke: the static callee for direct and method calls, or — for calls
// through an interface — every scanned concrete method with the same name
// and arity.
func resolveCallees(info *types.Info, call *ast.CallExpr, methodsByName map[string][]*types.Func) []*types.Func {
	var fn *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			fn, _ = info.Uses[id].(*types.Func)
		}
	}
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
		// Interface dispatch: fan out by name and arity. Type-parameter
		// substitution preserves arity, so this stays sound for generic
		// interfaces like bcd.Program[V, M], where types.Implements cannot
		// relate a concrete program to the parameterized interface.
		var out []*types.Func
		for _, m := range methodsByName[fn.Name()] {
			msig := m.Type().(*types.Signature)
			if msig.Params().Len() == sig.Params().Len() && msig.Recv() != nil && !types.IsInterface(msig.Recv().Type()) {
				out = append(out, m)
			}
		}
		return out
	}
	return []*types.Func{fn}
}

// flagAllocs reports allocation sites in hf's body. For root functions
// only sites inside loops are flagged; otherwise the whole body is hot.
func flagAllocs(pass *ModulePass, hf *haFunc, loopsOnly bool) {
	info := hf.pkg.Info
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			if n.Init != nil {
				walk(n.Init, inLoop)
			}
			if n.Cond != nil {
				walk(n.Cond, inLoop)
			}
			if n.Post != nil {
				walk(n.Post, inLoop)
			}
			walk(n.Body, true)
			return
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walk(n.Body, true)
			return
		case *ast.CallExpr:
			if !loopsOnly || inLoop {
				if msg := allocMessage(info, n); msg != "" {
					pass.Report(Diagnostic{Pos: n.Pos(), Rule: hotAllocName,
						Message: fmt.Sprintf("%s in hot path %s; %s", msg, hf.obj.Name(), allocAdvice(msg))})
				}
			}
		}
		children(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(hf.decl.Body, false)
}

// allocMessage classifies a call as an allocation site, returning a short
// description or "".
func allocMessage(info *types.Info, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				return b.Name() + " allocates"
			case "append":
				return "append may grow and allocate"
			}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return ""
		}
		if fn.Pkg().Path() == "fmt" {
			return "fmt." + fn.Name() + " allocates and reflects"
		}
		if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
			if named := namedRecvType(sig.Recv().Type()); named != nil {
				obj := named.Obj()
				if obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/word") && obj.Name() == "Array" {
					switch fn.Name() {
					case "Load", "Store", "Fill":
						return "word.Array." + fn.Name() + " allocates a transfer buffer per call"
					}
				}
			}
		}
	}
	return ""
}

// allocAdvice returns the remediation hint for an allocation class.
func allocAdvice(msg string) string {
	switch {
	case strings.Contains(msg, "word.Array"):
		return "use LoadBuf/StoreBuf with a per-worker buffer"
	case strings.Contains(msg, "fmt."):
		return "move formatting out of the hot path"
	default:
		return "hoist the buffer into per-worker scratch or a sync.Pool"
	}
}

// namedRecvType unwraps a receiver type to its named type, if any.
func namedRecvType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
