package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc guards the engine's per-edge and per-vertex inner loops against
// hidden allocation. GraphABCD's throughput story (Sec. IV-A1: the GATHER
// pipeline sustains one edge per cycle) survives in software only if the
// hot loops are allocation-free: a make/append/fmt call per edge turns the
// streaming loops into GC pressure. The analyzer seeds a reachability walk
// over the shared call graph at the configured hot roots (Config.HotRoots);
// inside a root it flags allocation sites lexically inside loops, and in
// any function reachable from such a loop it flags allocation sites
// anywhere. Calls through interfaces fan out by name+arity (see
// callgraph.go), which over-approximates — suppress deliberate amortized
// allocations with a reason.
//
// Flagged: make, new, append, any call into package fmt, and the
// word.Array Load/Store/Fill convenience methods, whose documentation
// already directs hot paths to LoadBuf/StoreBuf.
var HotAlloc = &Analyzer{
	Name:      hotAllocName,
	Doc:       "flags allocating operations reachable from the engine's hot loops",
	RunModule: runHotAlloc,
}

func runHotAlloc(pass *ModulePass) {
	graph := buildCallGraph(pass.Pkgs)

	// Reachability: from a root only loop-resident calls propagate; from
	// anything reached, every call propagates.
	reached := make(map[*types.Func]bool)
	var queue []*types.Func
	enqueue := func(obj *types.Func) {
		if !reached[obj] {
			reached[obj] = true
			queue = append(queue, obj)
		}
	}
	roots := make(map[*types.Func]bool)
	for _, n := range graph.funcs {
		if isHotRoot(pass.Config, n.pkg, n.decl) {
			roots[n.obj] = true
			for _, e := range n.edges {
				if e.inLoop {
					enqueue(e.callee)
				}
			}
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		if n, ok := graph.funcs[obj]; ok {
			for _, e := range n.edges {
				enqueue(e.callee)
			}
		}
	}

	// Flag allocation sites. Roots: loops only. Reached: anywhere.
	for _, n := range graph.funcs {
		switch {
		case roots[n.obj]:
			flagAllocs(pass, n, true)
		case reached[n.obj]:
			flagAllocs(pass, n, false)
		}
	}
}

// isHotRoot matches a declaration against Config.HotRoots "pkg:func"
// patterns (import-path suffix plus function name).
func isHotRoot(cfg *Config, pkg *Package, fd *ast.FuncDecl) bool {
	for _, pat := range cfg.HotRoots {
		pkgPat, funcPat, ok := strings.Cut(pat, ":")
		if !ok {
			continue
		}
		if fd.Name.Name == funcPat && strings.HasSuffix(pkg.ImportPath, pkgPat) {
			return true
		}
	}
	return false
}

// children invokes fn on the direct children of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// flagAllocs reports allocation sites in node's body. For root functions
// only sites inside loops are flagged; otherwise the whole body is hot.
func flagAllocs(pass *ModulePass, node *cgNode, loopsOnly bool) {
	info := node.pkg.Info
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			if n.Init != nil {
				walk(n.Init, inLoop)
			}
			if n.Cond != nil {
				walk(n.Cond, inLoop)
			}
			if n.Post != nil {
				walk(n.Post, inLoop)
			}
			walk(n.Body, true)
			return
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walk(n.Body, true)
			return
		case *ast.CallExpr:
			if !loopsOnly || inLoop {
				if msg := allocMessage(info, n); msg != "" {
					pass.Report(Diagnostic{Pos: n.Pos(), Rule: hotAllocName,
						Message: fmt.Sprintf("%s in hot path %s; %s", msg, node.obj.Name(), allocAdvice(msg))})
				}
			}
		}
		children(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(node.decl.Body, false)
}

// allocMessage classifies a call as an allocation site, returning a short
// description or "".
func allocMessage(info *types.Info, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				return b.Name() + " allocates"
			case "append":
				return "append may grow and allocate"
			}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return ""
		}
		if fn.Pkg().Path() == "fmt" {
			return "fmt." + fn.Name() + " allocates and reflects"
		}
		if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
			if named := namedRecvType(sig.Recv().Type()); named != nil {
				obj := named.Obj()
				if obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/word") && obj.Name() == "Array" {
					switch fn.Name() {
					case "Load", "Store", "Fill":
						return "word.Array." + fn.Name() + " allocates a transfer buffer per call"
					}
				}
			}
		}
	}
	return ""
}

// allocAdvice returns the remediation hint for an allocation class.
func allocAdvice(msg string) string {
	switch {
	case strings.Contains(msg, "word.Array"):
		return "use LoadBuf/StoreBuf with a per-worker buffer"
	case strings.Contains(msg, "fmt."):
		return "move formatting out of the hot path"
	default:
		return "hoist the buffer into per-worker scratch or a sync.Pool"
	}
}

// namedRecvType unwraps a receiver type to its named type, if any.
func namedRecvType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
