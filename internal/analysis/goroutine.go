package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GoroutineHygiene enforces the two goroutine-spawn rules the engine's
// worker pools rely on:
//
//  1. sync.WaitGroup.Add must execute in the spawning goroutine, before
//     the `go` statement. An Add inside the spawned body races with Wait:
//     the waiter can observe the counter at zero before any worker has
//     registered, and the termination unit returns while gather/scatter
//     workers are still running.
//  2. A goroutine closure launched inside a loop must not capture the loop
//     variable directly: pass it as an argument (or rebind it) as the
//     engine's worker spawns do. Go >= 1.22 gives each iteration a fresh
//     variable, but the rule keeps the hot spawn sites unambiguous and
//     safe under older toolchains and manual backports.
var GoroutineHygiene = &Analyzer{
	Name: goroutineName,
	Doc:  "flags WaitGroup.Add inside spawned goroutines and loop-variable capture by goroutine closures",
	Run:  runGoroutineHygiene,
}

func runGoroutineHygiene(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Rule 1: wg.Add inside the body launched by `go`.
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, name := mutexCall(info, call); recv != "" && name == "Add" {
					pass.Report(Diagnostic{Pos: call.Pos(), Rule: goroutineName,
						Message: fmt.Sprintf("%s.Add inside the spawned goroutine races with Wait; call Add before the go statement", recv)})
				}
				return true
			})
			return true
		})

		// Rule 2: loop-variable capture by a goroutine closure.
		checkLoopCapture(pass, info, f)
	}
}

// checkLoopCapture walks the file tracking the loop variables in scope and
// flags goroutine closures that reference them.
func checkLoopCapture(pass *Pass, info *types.Info, f *ast.File) {
	var loopVars []map[types.Object]bool
	inScope := func(obj types.Object) bool {
		for _, m := range loopVars {
			if m[obj] {
				return true
			}
		}
		return false
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			vars := make(map[types.Object]bool)
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			}
			loopVars = append(loopVars, vars)
			walk(n.Body)
			loopVars = loopVars[:len(loopVars)-1]
			return
		case *ast.RangeStmt:
			vars := make(map[types.Object]bool)
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
			loopVars = append(loopVars, vars)
			walk(n.Body)
			loopVars = loopVars[:len(loopVars)-1]
			return
		case *ast.GoStmt:
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				if len(loopVars) > 0 {
					seen := make(map[types.Object]bool)
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						id, ok := m.(*ast.Ident)
						if !ok {
							return true
						}
						obj := info.Uses[id]
						if obj != nil && inScope(obj) && !seen[obj] {
							seen[obj] = true
							pass.Report(Diagnostic{Pos: id.Pos(), Rule: goroutineName,
								Message: fmt.Sprintf("goroutine closure captures loop variable %s; pass it as an argument to the closure instead", obj.Name())})
						}
						return true
					})
				}
				// Loops inside the spawned body get their own fresh scope.
				saved := loopVars
				loopVars = nil
				walk(lit.Body)
				loopVars = saved
			}
			// Arguments to the spawned call evaluate in the loop body:
			// references there are fine.
			for _, arg := range n.Call.Args {
				walk(arg)
			}
			return
		}
		children(n, walk)
	}
	walk(f)
}
