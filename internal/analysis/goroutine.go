package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineHygiene enforces the two goroutine-spawn rules the engine's
// worker pools rely on:
//
//  1. sync.WaitGroup.Add must execute in the spawning goroutine, before
//     the `go` statement. An Add inside the spawned body races with Wait:
//     the waiter can observe the counter at zero before any worker has
//     registered, and the termination unit returns while gather/scatter
//     workers are still running.
//  2. A goroutine closure launched inside a loop must not capture the loop
//     variable directly: pass it as an argument (or rebind it) as the
//     engine's worker spawns do. Go >= 1.22 gives each iteration a fresh
//     variable, but the rule keeps the hot spawn sites unambiguous and
//     safe under older toolchains and manual backports.
//
// In the long-lived layers (Config.GoroutineOwnedPkgs: cmd/ and
// internal/telemetry) a third rule applies: every spawned goroutine's
// lifetime must be visibly tied to a done/stop channel, a
// sync.WaitGroup, or a context — the tracer-flusher pattern (trace.go's
// flushLoop selecting on t.stop). A goroutine with none of those outlives
// shutdown silently; the check accepts the bound one same-package call
// level deep, so `go s.progressLoop()` is judged by progressLoop's body.
var GoroutineHygiene = &Analyzer{
	Name: goroutineName,
	Doc:  "flags WaitGroup.Add inside spawned goroutines, loop-variable capture, and unbounded goroutine lifetimes in daemon-ish packages",
	Run:  runGoroutineHygiene,
}

func runGoroutineHygiene(pass *Pass) {
	info := pass.Pkg.Info
	checkLifetime := pkgMatches(pass.Pkg.ImportPath, pass.Config.GoroutineOwnedPkgs)
	var decls map[*types.Func]*ast.FuncDecl
	if checkLifetime {
		decls = packageFuncDecls(pass.Pkg)
	}
	for _, f := range pass.Pkg.Files {
		if checkLifetime {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoroutineLifetime(pass, info, decls, g)
				return true
			})
		}
		// Rule 1: wg.Add inside the body launched by `go`.
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, name := mutexCall(info, call); recv != "" && name == "Add" {
					pass.Report(Diagnostic{Pos: call.Pos(), Rule: goroutineName,
						Message: fmt.Sprintf("%s.Add inside the spawned goroutine races with Wait; call Add before the go statement", recv)})
				}
				return true
			})
			return true
		})

		// Rule 2: loop-variable capture by a goroutine closure.
		checkLoopCapture(pass, info, f)
	}
}

// checkLoopCapture walks the file tracking the loop variables in scope and
// flags goroutine closures that reference them.
func checkLoopCapture(pass *Pass, info *types.Info, f *ast.File) {
	var loopVars []map[types.Object]bool
	inScope := func(obj types.Object) bool {
		for _, m := range loopVars {
			if m[obj] {
				return true
			}
		}
		return false
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			vars := make(map[types.Object]bool)
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			}
			loopVars = append(loopVars, vars)
			walk(n.Body)
			loopVars = loopVars[:len(loopVars)-1]
			return
		case *ast.RangeStmt:
			vars := make(map[types.Object]bool)
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
			loopVars = append(loopVars, vars)
			walk(n.Body)
			loopVars = loopVars[:len(loopVars)-1]
			return
		case *ast.GoStmt:
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				if len(loopVars) > 0 {
					seen := make(map[types.Object]bool)
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						id, ok := m.(*ast.Ident)
						if !ok {
							return true
						}
						obj := info.Uses[id]
						if obj != nil && inScope(obj) && !seen[obj] {
							seen[obj] = true
							pass.Report(Diagnostic{Pos: id.Pos(), Rule: goroutineName,
								Message: fmt.Sprintf("goroutine closure captures loop variable %s; pass it as an argument to the closure instead", obj.Name())})
						}
						return true
					})
				}
				// Loops inside the spawned body get their own fresh scope.
				saved := loopVars
				loopVars = nil
				walk(lit.Body)
				loopVars = saved
			}
			// Arguments to the spawned call evaluate in the loop body:
			// references there are fine.
			for _, arg := range n.Call.Args {
				walk(arg)
			}
			return
		}
		children(n, walk)
	}
	walk(f)
}

// packageFuncDecls indexes the package's function declarations by object,
// so a `go s.method()` spawn can be judged by the method's body.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// checkGoroutineLifetime flags a `go` statement whose spawned body shows
// no lifetime bound: no receive/select/channel-range (a done or stop
// channel), no WaitGroup.Done, no context use. The spawned body is the
// function literal, or — for `go f()` / `go s.m()` — the same-package
// declaration's body; either is also accepted if a function it calls
// (same package, one level) carries the bound.
func checkGoroutineLifetime(pass *Pass, info *types.Info, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) {
	body := spawnedBody(info, decls, g.Call)
	if body == nil {
		// The callee is outside the package (e.g. go http.Serve(...)):
		// nothing visible bounds it.
		pass.Report(goroutineLifetimeDiag(pass, g))
		return
	}
	if bodyHasLifetimeBound(info, body) {
		return
	}
	// One level of same-package calls: the bound may live in a helper.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := calleeFunc(info, call); ok {
			if fd, ok := decls[fn]; ok && bodyHasLifetimeBound(info, fd.Body) {
				found = true
			}
		}
		return !found
	})
	if !found {
		pass.Report(goroutineLifetimeDiag(pass, g))
	}
}

func goroutineLifetimeDiag(pass *Pass, g *ast.GoStmt) Diagnostic {
	return Diagnostic{Pos: g.Pos(), Rule: goroutineName,
		Message: "goroutine lifetime is not tied to a done channel, WaitGroup, or context; shutdown can leak it — select on a stop channel or ctx.Done(), or register it with a WaitGroup"}
}

// spawnedBody resolves the body the `go` statement runs: a literal's body,
// or the same-package declaration of the called function/method.
func spawnedBody(info *types.Info, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn, ok := calleeFunc(info, call); ok {
		if fd, ok := decls[fn.Origin()]; ok {
			return fd.Body
		}
	}
	return nil
}

// bodyHasLifetimeBound reports whether body visibly ties the goroutine's
// lifetime to a shutdown signal: a channel receive, select, or
// channel-range (done/stop channels), a WaitGroup.Done, or any use of a
// context.Context value.
func bodyHasLifetimeBound(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if _, name := mutexCall(info, n); name == "Done" {
				found = true
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}
