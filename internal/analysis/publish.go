package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Publish checks the engine's publication discipline, in two parts.
//
// Part one is flow-aware: when a local value is published through an
// atomic store (`p.Store(&x)`, `atomic.StorePointer(&p, &x)`), readers can
// observe it from that statement on, so later statements in the same block
// must not mutate it — initialize fully, then publish, the idiom every
// lock-free handoff in the engine relies on (DESIGN.md §7). Returning the
// published value is also reported, because it hands the caller a mutable
// alias to shared state; when that is deliberate (callers only read, or
// writers are themselves atomic), say so with a suppression.
//
// Part two is a field contract: a struct field annotated with
// `//abcd:stamped` (the per-slot write stamps and atomic word arrays in
// internal/cluster and internal/word) may only be read through sync/atomic
// — an atomic function taking its address, or a method on an atomic
// element type. len/cap, index-only range, and composite-literal keys are
// exempt, as are plain-assignment initializations (construction happens
// before sharing).
var Publish = &Analyzer{
	Name: publishName,
	Doc:  "flags mutations of values after their atomic-store publication and non-atomic reads of //abcd:stamped fields",
	Run:  runPublish,
}

// stampedDirective marks a struct field whose reads must be atomic.
const stampedDirective = "//abcd:stamped"

func runPublish(pass *Pass) {
	info := pass.Pkg.Info
	parents := buildParents(pass.Pkg.Files)
	stamped := collectStampedFields(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		checkPostPublish(pass, info, f)
		checkStampedReads(pass, info, parents, stamped, f)
	}
}

// ---- part one: post-publish mutation ----

// checkPostPublish scans every statement list for an atomic store
// publishing a local, then flags later statements that write through or
// return the published value.
func checkPostPublish(pass *Pass, info *types.Info, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, s := range list {
			obj, store := publishedLocal(info, s)
			if obj == nil {
				continue
			}
			for _, later := range list[i+1:] {
				flagPostPublishUse(pass, info, obj, store, later)
			}
		}
		return true
	})
}

// publishedLocal matches one statement against the atomic-publish shapes
// and returns the local variable object it publishes: `recv.Store(v)` and
// `recv.Store(&v)` for a sync/atomic method, `atomic.StoreX(&p, v)` and
// friends for the function form (the published value is the last
// argument).
func publishedLocal(info *types.Info, s ast.Stmt) (types.Object, *ast.CallExpr) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, nil
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, nil
	}
	fn, ok := calleeFunc(info, call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !strings.HasPrefix(fn.Name(), "Store") {
		return nil, nil
	}
	arg := unparen(call.Args[len(call.Args)-1])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = unparen(u.X)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.IsField() || obj.Parent() == nil {
		return nil, nil
	}
	return obj, call
}

// flagPostPublishUse reports writes through obj and returns of obj inside
// one statement executed after obj's publication.
func flagPostPublishUse(pass *Pass, info *types.Info, obj types.Object, store *ast.CallExpr, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root := rootIdent(lhs); root != nil && info.Uses[root] == obj {
					pass.Report(Diagnostic{Pos: lhs.Pos(), Rule: publishName,
						Message: fmt.Sprintf("write to %s after it was published by an atomic store; readers may already hold it — complete initialization before the Store", obj.Name())})
				}
			}
		case *ast.IncDecStmt:
			if root := rootIdent(n.X); root != nil && info.Uses[root] == obj {
				pass.Report(Diagnostic{Pos: n.Pos(), Rule: publishName,
					Message: fmt.Sprintf("mutation of %s after it was published by an atomic store; readers may already hold it — complete initialization before the Store", obj.Name())})
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if root := rootIdent(res); root != nil && info.Uses[root] == obj {
					pass.Report(Diagnostic{Pos: res.Pos(), Rule: publishName,
						Message: fmt.Sprintf("%s is returned after being published by an atomic store, handing the caller a mutable alias to shared state; suppress with the safety argument or copy before publishing", obj.Name())})
				}
			}
		}
		return true
	})
}

// rootIdent unwraps index/selector/star/paren chains to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ---- part two: stamped fields ----

// collectStampedFields gathers every struct field in pkg carrying the
// //abcd:stamped directive in its doc or line comment.
func collectStampedFields(pkg *Package) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(field *ast.Field) {
		for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == stampedDirective {
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mark(field)
			}
			return true
		})
	}
	return out
}

// checkStampedReads flags every use of a stamped field that is not
// sanctioned: not inside a sync/atomic call, not len/cap, not an
// index-only range, not a composite-literal key, and not a plain
// assignment target.
func checkStampedReads(pass *Pass, info *types.Info, parents parentMap, stamped map[types.Object]bool, f *ast.File) {
	if len(stamped) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		if obj == nil || !stamped[obj] {
			return true
		}
		if !stampedUseSanctioned(info, parents, sel) {
			pass.Report(Diagnostic{Pos: sel.Pos(), Rule: publishName,
				Message: fmt.Sprintf("non-atomic read of stamp-protected field %s (//abcd:stamped); go through sync/atomic so the write stamp's happens-before edge holds", obj.Name())})
		}
		return true
	})
}

// stampedUseSanctioned walks up from the field selector classifying its
// use.
func stampedUseSanctioned(info *types.Info, parents parentMap, sel *ast.SelectorExpr) bool {
	var node ast.Node = sel
	for {
		parent := parents[node]
		if parent == nil {
			return false
		}
		switch p := parent.(type) {
		case *ast.CallExpr:
			if node == p.Fun {
				// The field itself is being called as a function: not an
				// atomic access.
				return false
			}
			if fn, ok := calleeFunc(info, p); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				return true
			}
			if id, ok := unparen(p.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
					return true
				}
			}
			return false
		case *ast.SelectorExpr:
			// The field is the receiver of a method selection
			// (slotSeq[i].Load): sanctioned iff the method lives in
			// sync/atomic, i.e. the element type itself is atomic.
			if mfn, ok := info.Uses[p.Sel].(*types.Func); ok && mfn.Pkg() != nil && mfn.Pkg().Path() == "sync/atomic" {
				return true
			}
			return false
		case *ast.RangeStmt:
			// `for i := range x.field` touches only the length.
			return node == p.X && p.Value == nil
		case *ast.KeyValueExpr:
			return node == p.Key
		case *ast.AssignStmt:
			// Plain-assignment initialization before sharing.
			if p.Tok == token.ASSIGN || p.Tok == token.DEFINE {
				for _, lhs := range p.Lhs {
					if lhs == node {
						return true
					}
				}
			}
			return false
		case *ast.IndexExpr, *ast.ParenExpr, *ast.UnaryExpr, *ast.StarExpr:
			node = parent
		default:
			return false
		}
	}
}
