package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe polices the few places the engine is allowed to use locks at
// all. GraphABCD's dataflow is deliberately lock-free (Sec. IV-A3); the
// mutexes that remain (accelerator-model accounting, baseline sweeps) are
// leaf-level critical sections. Two hazards would break the engine's
// liveness story:
//
//  1. Holding a mutex across a channel operation or other blocking call —
//     the scheduler, PE workers, and SCATTER workers coordinate through
//     bounded task queues, so a lock held across a queue op can deadlock
//     the gather-apply-scatter pipeline.
//  2. A Lock whose Unlock is not reached on every path (early return, or
//     no Unlock at all in the same block) — use defer, or restructure.
//
// The check is lexical within one statement block: a Lock immediately
// followed by a matching deferred Unlock is always accepted.
var LockSafe = &Analyzer{
	Name: lockSafeName,
	Doc:  "flags mutexes held across blocking operations and Locks without covering Unlocks",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			checkLockBlock(pass, list)
			return true
		})
	}
}

// checkLockBlock scans one statement list for Lock calls and verifies each
// is covered by an Unlock in the same list.
func checkLockBlock(pass *Pass, stmts []ast.Stmt) {
	info := pass.Pkg.Info
	for i, s := range stmts {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		mutex, lockName := mutexCall(info, es.X)
		if mutex == "" || (lockName != "Lock" && lockName != "RLock") {
			continue
		}
		unlockName := "Unlock"
		if lockName == "RLock" {
			unlockName = "RUnlock"
		}

		covered := false
		var hazards []Diagnostic
		for j := i + 1; j < len(stmts); j++ {
			if d, ok := stmts[j].(*ast.DeferStmt); ok {
				if m, n := mutexCall(info, d.Call); m == mutex && n == unlockName {
					covered = true // defer covers every later path
					break
				}
			}
			if e2, ok := stmts[j].(*ast.ExprStmt); ok {
				if m, n := mutexCall(info, e2.X); m == mutex && n == unlockName {
					covered = true
					break
				}
			}
			hazards = append(hazards, stmtHazards(pass, info, mutex, stmts[j])...)
		}
		if !covered {
			pass.Report(Diagnostic{Pos: es.Pos(), Rule: lockSafeName,
				Message: fmt.Sprintf("%s.%s is not released in this block and no defer covers it; add `defer %s.%s()`",
					mutex, lockName, mutex, unlockName)})
			continue
		}
		for _, h := range hazards {
			pass.Report(h)
		}
	}
}

// stmtHazards collects blocking operations and early exits nested anywhere
// in one statement executed between Lock and Unlock.
func stmtHazards(pass *Pass, info *types.Info, mutex string, stmt ast.Stmt) []Diagnostic {
	var out []Diagnostic
	report := func(pos ast.Node, what string) {
		out = append(out, Diagnostic{Pos: pos.Pos(), Rule: lockSafeName,
			Message: fmt.Sprintf("%s while holding %s; the engine's task queues must never be touched under a lock", what, mutex)})
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // deferred/spawned bodies run elsewhere
		case *ast.SendStmt:
			report(n, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n, "channel receive")
			}
		case *ast.SelectStmt:
			report(n, "select")
			return false
		case *ast.CallExpr:
			if m, name := mutexCall(info, n); m != "" && name == "Wait" {
				report(n, "sync."+name)
			}
		case *ast.ReturnStmt:
			out = append(out, Diagnostic{Pos: n.Pos(), Rule: lockSafeName,
				Message: fmt.Sprintf("return between %s.Lock and its Unlock leaves the mutex held; use defer", mutex)})
		}
		return true
	})
	return out
}

// mutexCall matches `x.M()` where M is a method of a sync type
// (Mutex, RWMutex, WaitGroup, ...), returning the receiver expression
// rendered as a string plus the method name.
func mutexCall(info *types.Info, e ast.Expr) (mutex, method string) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}
