package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"graphabcd"
	"graphabcd/internal/obslog"
	"graphabcd/internal/telemetry"
)

// Options configures a Server. The zero value serves from the current
// directory with conservative defaults; every limit is optional.
type Options struct {
	// GraphDir is the snapshot directory the graph pool loads from.
	GraphDir string
	// MemoryBudget bounds the pool's resident bytes; <= 0 is unlimited.
	MemoryBudget int64
	// MaxRunning is the worker count — the number of jobs executing
	// concurrently. 0 means 2.
	MaxRunning int
	// QueueDepth bounds the submitted-but-not-running backlog; a full
	// queue rejects with 503 and flips /readyz. 0 means 64.
	QueueDepth int
	// TenantRate and TenantBurst parameterize the per-tenant token
	// bucket (tokens/second, bucket size). Burst 0 disables limiting.
	TenantRate  float64
	TenantBurst int
	// CacheEntries bounds the result cache; 0 means 256, negative
	// disables caching.
	CacheEntries int
	// CheckpointDir enables durable jobs: the job journal and the
	// engine's checkpoint epochs live here. Empty rejects "durable".
	CheckpointDir      string
	CheckpointInterval time.Duration
	// EngineDefaults, when non-nil, is the base engine Config every job
	// starts from before request overrides apply.
	EngineDefaults *graphabcd.Config
	// Runtime overrides the execution runtime (nil means
	// graphabcd.NewRuntime).
	Runtime graphabcd.Runtime
	// Preload names graphs to load into the pool before serving.
	Preload []string
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// Log overrides the obslog default logger.
	Log *slog.Logger
}

// Server is the HTTP analytics server: the graph pool, job manager,
// result cache, and admission control behind one ServeMux.
type Server struct {
	health *telemetry.Health
	pool   *Pool
	cache  *Cache
	mgr    *Manager
	mux    *http.ServeMux
	clock  func() time.Time
	log    *slog.Logger

	rejectsRate  atomic.Int64
	rejectsQueue atomic.Int64
}

// New builds a Server: opens the journal, starts the workers, preloads
// graphs, resumes journaled durable jobs, and flips /readyz to ready.
func New(opts Options) (*Server, error) {
	if opts.MaxRunning <= 0 {
		opts.MaxRunning = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 256
	}
	if opts.CheckpointInterval <= 0 {
		opts.CheckpointInterval = 5 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Log == nil {
		opts.Log = obslog.L()
	}
	if opts.Runtime == nil {
		opts.Runtime = graphabcd.NewRuntime()
	}

	health := telemetry.NewHealth("starting")
	pool := NewPool(opts.GraphDir, opts.MemoryBudget, health)
	var jnl *journal
	if opts.CheckpointDir != "" {
		var err error
		if jnl, err = openJournal(opts.CheckpointDir); err != nil {
			return nil, err
		}
	}
	mgr := newManager(managerOptions{
		runtime: opts.Runtime,
		pool:    pool,
		cache:   NewCache(opts.CacheEntries),
		limiter: NewLimiter(opts.TenantRate, opts.TenantBurst, opts.Clock),
		base:    opts.EngineDefaults,
		clock:   opts.Clock,
		log:     opts.Log,
		journal: jnl,
		ckptDir: opts.CheckpointDir, ckptIntv: opts.CheckpointInterval,
		maxRunning: opts.MaxRunning, queueDepth: opts.QueueDepth,
	})
	s := &Server{
		health: health, pool: pool, cache: mgr.cache, mgr: mgr,
		clock: opts.Clock, log: opts.Log,
	}
	s.routes()

	for _, name := range opts.Preload {
		_, _, release, err := pool.Acquire(name)
		if err != nil {
			mgr.Close()
			return nil, fmt.Errorf("serve: preloading %q: %w", name, err)
		}
		release() // resident but unpinned; the budget may evict it later
	}
	if n, err := mgr.Resume(); err != nil {
		s.log.Error("journal resume failed", "err", err)
	} else if n > 0 {
		s.log.Info("resumed durable jobs from journal", "jobs", n)
	}
	health.SetReady(true, "serving")
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Health exposes the readiness tracker (tests assert its History).
func (s *Server) Health() *telemetry.Health { return s.health }

// Close drains the job subsystem. In-flight durable jobs are left
// resumable: no terminal journal records are written during shutdown.
func (s *Server) Close() { s.mgr.Close() }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.Handle("GET /healthz", telemetry.HealthzHandler())
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// writeError maps the graphabcd sentinels onto HTTP statuses: unknown
// algorithm 400, unknown graph/job 404, tenant rate limit 429, shared
// overload 503. Everything else is a 400 — submissions fail fast on
// malformed input, and engine-side failures surface as job state, not
// transport errors.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, errRateLimited):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, graphabcd.ErrOverloaded):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, graphabcd.ErrGraphNotFound), errors.Is(err, graphabcd.ErrJobNotFound):
		code = http.StatusNotFound
	case errors.Is(err, graphabcd.ErrUnknownAlgorithm):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// jobStatus is the wire form of a job.
type jobStatus struct {
	ID        string  `json:"id"`
	Algorithm string  `json:"algorithm"`
	Graph     string  `json:"graph"`
	State     string  `json:"state"`
	Cached    bool    `json:"cached"`
	Durable   bool    `json:"durable,omitempty"`
	Tenant    string  `json:"tenant,omitempty"`
	Created   string  `json:"created"`
	Finished  string  `json:"finished,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`

	Stats *statsBody `json:"stats,omitempty"`

	Float     []float64   `json:"float,omitempty"`
	Uint      []uint64    `json:"uint,omitempty"`
	Vectors   [][]float32 `json:"vectors,omitempty"`
	Residuals []float64   `json:"residuals,omitempty"`
}

type statsBody struct {
	Epochs         float64 `json:"epochs"`
	Converged      bool    `json:"converged"`
	VertexUpdates  int64   `json:"vertex_updates"`
	EdgesTraversed int64   `json:"edges_traversed"`
	WallMS         float64 `json:"wall_ms"`
	Nodes          int     `json:"nodes,omitempty"`
}

func (s *Server) status(v JobView, includeValues bool) jobStatus {
	st := jobStatus{
		ID: v.ID, Algorithm: v.Algorithm, Graph: v.Graph,
		State: string(v.State), Cached: v.Cached, Durable: v.Durable, Tenant: v.Tenant,
		Created: v.Created.UTC().Format(time.RFC3339Nano),
		Error:   v.Err,
	}
	if v.State.Terminal() {
		st.Finished = v.Finished.UTC().Format(time.RFC3339Nano)
		st.ElapsedMS = float64(v.Finished.Sub(v.Created)) / float64(time.Millisecond)
	} else {
		st.ElapsedMS = float64(s.clock().Sub(v.Created)) / float64(time.Millisecond)
	}
	if res := v.Result; res != nil {
		st.Stats = &statsBody{
			Epochs:         res.Stats.Epochs,
			Converged:      res.Stats.Converged,
			VertexUpdates:  res.Stats.VertexUpdates,
			EdgesTraversed: res.Stats.EdgesTraversed,
			WallMS:         float64(res.Stats.WallTime) / float64(time.Millisecond),
		}
		if res.Cluster != nil {
			st.Stats.Nodes = res.Cluster.Nodes
		}
		if includeValues {
			st.Float, st.Uint, st.Vectors, st.Residuals = res.Float, res.Uint, res.Vectors, res.Residuals
		}
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("serve: decoding job request: %w", err))
		return
	}
	job, err := s.mgr.Submit(&req, tenantOf(r))
	if err != nil {
		switch {
		case errors.Is(err, errRateLimited):
			s.rejectsRate.Add(1)
		case errors.Is(err, graphabcd.ErrOverloaded):
			s.rejectsQueue.Add(1)
		}
		writeError(w, err)
		return
	}
	v := job.View()
	code := http.StatusAccepted
	if v.State.Terminal() { // cache hit: the job is already done
		code = http.StatusOK
	}
	writeJSON(w, code, s.status(v, v.State.Terminal()))
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	views := s.mgr.List()
	sort.Slice(views, func(i, j int) bool { return views[i].Created.Before(views[j].Created) })
	out := make([]jobStatus, len(views))
	for i, v := range views {
		out[i] = s.status(v, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: %q", graphabcd.ErrJobNotFound, r.PathValue("id")))
		return
	}
	includeValues := r.URL.Query().Get("values") != "false"
	writeJSON(w, http.StatusOK, s.status(job.View(), includeValues))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: %q", graphabcd.ErrJobNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(job.View(), false))
}

// sseEvent is the SSE data payload for one runtime event.
type sseEvent struct {
	Job          string  `json:"job"`
	Epoch        int     `json:"epoch"`
	Residual     float64 `json:"residual,omitempty"`
	ActiveBlocks int     `json:"active_blocks,omitempty"`
	Error        string  `json:"error,omitempty"`
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: %q", graphabcd.ErrJobNotFound, r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("serve: response writer cannot stream"))
		return
	}
	ch, unsubscribe := job.Subscribe()
	defer unsubscribe()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			data, _ := json.Marshal(sseEvent{
				Job: ev.Job, Epoch: ev.Epoch, Residual: ev.Residual,
				ActiveBlocks: ev.ActiveBlocks, Error: ev.Err,
			})
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return // client went away
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	type algoBody struct {
		Name             string                `json:"name"`
		Aliases          []string              `json:"aliases,omitempty"`
		Description      string                `json:"description"`
		Values           string                `json:"values"`
		NeedsSource      bool                  `json:"needs_source,omitempty"`
		NeedsSeeds       bool                  `json:"needs_seeds,omitempty"`
		Distributed      bool                  `json:"distributed,omitempty"`
		DefaultMaxEpochs float64               `json:"default_max_epochs,omitempty"`
		Params           []graphabcd.ParamSpec `json:"params,omitempty"`
	}
	specs := graphabcd.Algorithms()
	out := make([]algoBody, len(specs))
	for i, a := range specs {
		out[i] = algoBody{
			Name: a.Name, Aliases: a.Aliases, Description: a.Description,
			Values: a.Values.String(), NeedsSource: a.NeedsSource, NeedsSeeds: a.NeedsSeeds,
			Distributed: a.Distributed, DefaultMaxEpochs: a.DefaultMaxEpochs, Params: a.Params,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": out})
}

func (s *Server) handleGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"graphs":         s.pool.List(),
		"resident_bytes": s.pool.UsedBytes(),
	})
}

// handleQuery serves point queries: run (or cache-hit) the job and return
// only the requested vertices' values — SSSP/BFS distances from a source,
// a CC component id, personalized PageRank scores. ?top=k instead returns
// the k highest-valued vertices.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := JobRequest{Algorithm: q.Get("algorithm"), Graph: q.Get("graph")}
	if v := q.Get("source"); v != "" {
		src, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			writeError(w, fmt.Errorf("serve: bad source %q: %w", v, err))
			return
		}
		u := uint32(src)
		req.Source = &u
	}
	if v := q.Get("seeds"); v != "" {
		seeds, err := parseVertexList(v)
		if err != nil {
			writeError(w, err)
			return
		}
		req.Seeds = seeds
	}
	if v := q.Get("damping"); v != "" {
		d, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, fmt.Errorf("serve: bad damping %q: %w", v, err))
			return
		}
		req.Damping = d
	}
	var vertices []uint32
	if v := q.Get("vertices"); v != "" {
		var err error
		if vertices, err = parseVertexList(v); err != nil {
			writeError(w, err)
			return
		}
	}
	topK := 0
	if v := q.Get("top"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k <= 0 {
			writeError(w, fmt.Errorf("serve: bad top %q", v))
			return
		}
		topK = k
	}
	if len(vertices) == 0 && topK == 0 {
		writeError(w, fmt.Errorf("serve: point query needs ?vertices=... or ?top=k"))
		return
	}

	start := s.clock()
	job, err := s.mgr.Submit(&req, tenantOf(r))
	if err != nil {
		writeError(w, err)
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		return
	}
	v := job.View()
	if v.State != StateDone || v.Result == nil {
		writeError(w, fmt.Errorf("serve: query job %s ended %s: %s", v.ID, v.State, v.Err))
		return
	}
	res := v.Result
	value := func(i uint32) any {
		if res.Float != nil {
			return res.Float[i]
		}
		return res.Uint[i]
	}
	n := len(res.Float) + len(res.Uint)
	body := map[string]any{
		"job":        v.ID,
		"graph":      v.Graph,
		"algorithm":  v.Algorithm,
		"cached":     v.Cached,
		"elapsed_ms": float64(s.clock().Sub(start)) / float64(time.Millisecond),
	}
	if len(vertices) > 0 {
		values := make(map[string]any, len(vertices))
		for _, vtx := range vertices {
			if int(vtx) >= n {
				writeError(w, fmt.Errorf("serve: vertex %d outside graph with %d vertices", vtx, n))
				return
			}
			values[strconv.FormatUint(uint64(vtx), 10)] = value(vtx)
		}
		body["values"] = values
	}
	if topK > 0 {
		if res.Float == nil {
			writeError(w, fmt.Errorf("serve: ?top=k needs a float-valued algorithm"))
			return
		}
		type ranked struct {
			Vertex uint32  `json:"vertex"`
			Value  float64 `json:"value"`
		}
		idx := make([]ranked, len(res.Float))
		for i, x := range res.Float {
			idx[i] = ranked{Vertex: uint32(i), Value: x}
		}
		sort.Slice(idx, func(a, b int) bool { return idx[a].Value > idx[b].Value })
		if topK > len(idx) {
			topK = len(idx)
		}
		body["top"] = idx[:topK]
	}
	writeJSON(w, http.StatusOK, body)
}

func parseVertexList(s string) ([]uint32, error) {
	parts := strings.Split(s, ",")
	out := make([]uint32, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("serve: bad vertex id %q: %w", p, err)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

// handleReadyz folds admission state into readiness: a saturated job
// queue reports 503 so load balancers steer new work elsewhere, on top of
// the Health tracker's own not-ready windows (startup, graph loads).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.QueueFull() {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("not ready: job queue saturated\n"))
		return
	}
	telemetry.ReadyzHandler(s.health).ServeHTTP(w, r)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, entries := s.cache.Stats()
	depth, capacity := s.mgr.QueueDepth()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Sticky-error line writer, same shape as telemetry's promWriter: the
	// first failed write (client gone) silences the rest.
	var werr error
	line := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}
	line("graphabcdd_jobs_done_total %d\n", s.mgr.doneJobs.Load())
	line("graphabcdd_jobs_failed_total %d\n", s.mgr.failedJobs.Load())
	line("graphabcdd_cache_hits_total %d\n", hits)
	line("graphabcdd_cache_misses_total %d\n", misses)
	line("graphabcdd_cache_entries %d\n", entries)
	line("graphabcdd_pool_resident_bytes %d\n", s.pool.UsedBytes())
	line("graphabcdd_queue_depth %d\n", depth)
	line("graphabcdd_queue_capacity %d\n", capacity)
	line("graphabcdd_admission_rejected_total{reason=\"rate\"} %d\n", s.rejectsRate.Load())
	line("graphabcdd_admission_rejected_total{reason=\"queue\"} %d\n", s.rejectsQueue.Load())
}
