package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphabcd"
)

// writeRing saves an n-vertex unit-weight ring snapshot as name.gabs.
func writeRing(t *testing.T, dir, name string, n int) {
	t.Helper()
	edges := make([]graphabcd.Edge, n)
	for v := 0; v < n; v++ {
		edges[v] = graphabcd.Edge{Src: uint32(v), Dst: uint32((v + 1) % n), Weight: 1}
	}
	g, err := graphabcd.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphabcd.Save(filepath.Join(dir, name+".gabs"), g); err != nil {
		t.Fatal(err)
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, tenant string, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("decoding %s: %v", path, err)
	}
	return resp.StatusCode, out
}

// waitState polls a job until it reaches a terminal state.
func waitState(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getJSON(t, ts, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d (%v)", id, code, body)
		}
		switch body["state"] {
		case "done", "failed", "cancelled":
			return body
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return nil
}

// waitRunning polls until the job leaves the queued state.
func waitRunning(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, body := getJSON(t, ts, "/v1/jobs/"+id)
		if s, _ := body["state"].(string); s != "" && s != "queued" {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

func TestSubmitPollValues(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "ring", 256)
	_, ts := newTestServer(t, Options{GraphDir: dir})

	code, body := postJob(t, ts, "", `{"algorithm":"pagerank","graph":"ring"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, body)
	}
	id := body["id"].(string)
	final := waitState(t, ts, id)
	if final["state"] != "done" {
		t.Fatalf("job ended %v: %v", final["state"], final["error"])
	}
	stats := final["stats"].(map[string]any)
	if stats["converged"] != true {
		t.Fatalf("pagerank did not converge: %v", stats)
	}
	values := final["float"].([]any)
	if len(values) != 256 {
		t.Fatalf("got %d values", len(values))
	}
	sum := 0.0
	for _, v := range values {
		sum += v.(float64)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("pagerank mass %g, want ~1", sum)
	}
	// values=false must omit the (potentially huge) value arrays.
	_, slim := getJSON(t, ts, "/v1/jobs/"+id+"?values=false")
	if _, ok := slim["float"]; ok {
		t.Fatal("values=false still returned the value array")
	}
}

func TestUnknownAlgorithmAndGraph(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "ring", 16)
	_, ts := newTestServer(t, Options{GraphDir: dir})

	if code, body := postJob(t, ts, "", `{"algorithm":"dijkstra","graph":"ring"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: %d (%v)", code, body)
	}
	if code, body := postJob(t, ts, "", `{"algorithm":"pagerank","graph":"nope"}`); code != http.StatusNotFound {
		t.Fatalf("unknown graph: %d (%v)", code, body)
	}
	if code, body := postJob(t, ts, "", `{"algorithm":"pagerank","graph":"../../etc/passwd"}`); code != http.StatusNotFound {
		t.Fatalf("path traversal: %d (%v)", code, body)
	}
	if code, _ := postJob(t, ts, "", `{not json`); code != http.StatusBadRequest {
		t.Fatalf("bad json: %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/j-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

func TestCacheHitOnResubmit(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "ring", 256)
	_, ts := newTestServer(t, Options{GraphDir: dir})

	code, body := postJob(t, ts, "", `{"algorithm":"pr","graph":"ring","damping":0.9}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, body)
	}
	first := waitState(t, ts, body["id"].(string))
	if first["state"] != "done" || first["cached"] == true {
		t.Fatalf("first run: %v cached=%v", first["state"], first["cached"])
	}

	// Identical parameters (canonical alias, same damping) must hit.
	code, hit := postJob(t, ts, "", `{"algorithm":"pagerank","graph":"ring","damping":0.9}`)
	if code != http.StatusOK {
		t.Fatalf("resubmit: %d (%v)", code, hit)
	}
	if hit["cached"] != true || hit["state"] != "done" {
		t.Fatalf("resubmit not served from cache: %v", hit)
	}
	if len(hit["float"].([]any)) != 256 {
		t.Fatal("cached response missing values")
	}

	// Different parameters must miss.
	code, miss := postJob(t, ts, "", `{"algorithm":"pagerank","graph":"ring","damping":0.5}`)
	if code != http.StatusAccepted || miss["cached"] == true {
		t.Fatalf("different damping should miss the cache: %d %v", code, miss["cached"])
	}
	waitState(t, ts, miss["id"].(string))

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte("graphabcdd_cache_hits_total 1")) {
		t.Fatalf("metrics missing the cache hit:\n%s", metrics)
	}
}

func TestTenantRateLimit(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "ring", 32)
	// Rate 0: each tenant gets a fixed quota of 2 that never refills.
	_, ts := newTestServer(t, Options{GraphDir: dir, TenantRate: 0, TenantBurst: 2})

	for i := 0; i < 2; i++ {
		if code, body := postJob(t, ts, "alice", `{"algorithm":"cc","graph":"ring"}`); code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("alice submit %d: %d (%v)", i, code, body)
		}
	}
	code, body := postJob(t, ts, "alice", `{"algorithm":"cc","graph":"ring"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice's third submit: %d (%v), want 429", code, body)
	}
	if code, _ := postJob(t, ts, "bob", `{"algorithm":"cc","graph":"ring"}`); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("bob must have his own bucket: %d", code)
	}
}

func TestQueueSaturationAndReadyz(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "ring", 64)
	release := make(chan struct{})
	cfg := graphabcd.DefaultConfig(8)
	cfg.StallHook = func(string) { <-release } // jobs freeze until released
	_, ts := newTestServer(t, Options{
		GraphDir: dir, MaxRunning: 1, QueueDepth: 1, EngineDefaults: &cfg,
	})

	code, body := postJob(t, ts, "", `{"algorithm":"pagerank","graph":"ring"}`)
	if code != http.StatusAccepted {
		t.Fatalf("job1: %d", code)
	}
	id1 := body["id"].(string)
	waitRunning(t, ts, id1) // worker holds job1; the queue is empty again

	code, body = postJob(t, ts, "", `{"algorithm":"sssp","graph":"ring","source":0}`)
	if code != http.StatusAccepted {
		t.Fatalf("job2: %d (%v)", code, body)
	}
	id2 := body["id"].(string)

	// Queue (depth 1) now holds job2: next submit is rejected 503 and
	// readiness reflects the saturation.
	code, body = postJob(t, ts, "", `{"algorithm":"cc","graph":"ring"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit: %d (%v), want 503", code, body)
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(msg), "saturated") {
		t.Fatalf("/readyz under saturation: %d %q", resp.StatusCode, msg)
	}

	close(release)
	if final := waitState(t, ts, id1); final["state"] != "done" {
		t.Fatalf("job1 ended %v", final["state"])
	}
	if final := waitState(t, ts, id2); final["state"] != "done" {
		t.Fatalf("job2 ended %v", final["state"])
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after drain: %d", resp.StatusCode)
	}
}

func TestCancelRunningJob(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "ring", 256)
	release := make(chan struct{})
	cfg := graphabcd.DefaultConfig(8)
	cfg.StallHook = func(string) { <-release }
	_, ts := newTestServer(t, Options{GraphDir: dir, EngineDefaults: &cfg})

	_, body := postJob(t, ts, "", `{"algorithm":"pagerank","graph":"ring"}`)
	id := body["id"].(string)
	waitRunning(t, ts, id)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	close(release) // let the frozen workers observe the cancelled context
	final := waitState(t, ts, id)
	if final["state"] != "cancelled" {
		t.Fatalf("job ended %v, want cancelled", final["state"])
	}
}

func TestSSEEventStream(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "ring", 512)
	_, ts := newTestServer(t, Options{GraphDir: dir})

	_, body := postJob(t, ts, "", `{"algorithm":"pagerank","graph":"ring"}`)
	id := body["id"].(string)
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			types = append(types, ev)
		}
	}
	if len(types) == 0 || types[len(types)-1] != "done" {
		t.Fatalf("event stream %v must end with done", types)
	}
}

func TestPointQueries(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "ring", 64)
	_, ts := newTestServer(t, Options{GraphDir: dir})

	// SSSP distance along a unit-weight ring is the hop count.
	code, body := getJSON(t, ts, "/v1/query?graph=ring&algorithm=sssp&source=0&vertices=5,12")
	if code != http.StatusOK {
		t.Fatalf("sssp query: %d (%v)", code, body)
	}
	values := body["values"].(map[string]any)
	if values["5"].(float64) != 5 || values["12"].(float64) != 12 {
		t.Fatalf("ring distances wrong: %v", values)
	}

	// One connected component: every vertex labels 0.
	code, body = getJSON(t, ts, "/v1/query?graph=ring&algorithm=cc&vertices=63")
	if code != http.StatusOK || body["values"].(map[string]any)["63"].(float64) != 0 {
		t.Fatalf("cc query: %d (%v)", code, body)
	}

	// Personalized PageRank: the seed must top the ranking.
	code, body = getJSON(t, ts, "/v1/query?graph=ring&algorithm=ppr&seeds=7&top=1")
	if code != http.StatusOK {
		t.Fatalf("ppr query: %d (%v)", code, body)
	}
	top := body["top"].([]any)[0].(map[string]any)
	if top["vertex"].(float64) != 7 {
		t.Fatalf("ppr top vertex %v, want the seed 7", top)
	}

	// The identical query is served from the cache.
	_, again := getJSON(t, ts, "/v1/query?graph=ring&algorithm=sssp&source=0&vertices=5,12")
	if again["cached"] != true {
		t.Fatalf("repeat query not cached: %v", again)
	}

	if code, _ := getJSON(t, ts, "/v1/query?graph=ring&algorithm=sssp&source=0"); code != http.StatusBadRequest {
		t.Fatalf("query without vertices/top: %d", code)
	}
}

func TestReadyzFlipsDuringPreload(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "ring", 64)
	srv, ts := newTestServer(t, Options{GraphDir: dir, Preload: []string{"ring"}})

	hist := srv.Health().History()
	want := []struct {
		ready  bool
		reason string
	}{
		{false, "starting"},
		{false, "loading graph ring"},
		{true, "serving"},
	}
	if len(hist) != len(want) {
		t.Fatalf("health history %+v", hist)
	}
	for i, w := range want {
		if hist[i].Ready != w.ready || hist[i].Reason != w.reason {
			t.Fatalf("transition %d = %+v, want %+v", i, hist[i], w)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after preload: %d", resp.StatusCode)
	}
}

func TestPoolEvictionUnderBudget(t *testing.T) {
	dir := t.TempDir()
	writeRing(t, dir, "g1", 256)
	writeRing(t, dir, "g2", 256)
	// A 256-vertex ring costs 24*256 + 20*256 + 16 bytes; the budget fits
	// exactly one, so loading g2 must evict idle g1.
	_, ts := newTestServer(t, Options{GraphDir: dir, MemoryBudget: 12000})

	for _, g := range []string{"g1", "g2"} {
		_, body := postJob(t, ts, "", fmt.Sprintf(`{"algorithm":"cc","graph":%q}`, g))
		if final := waitState(t, ts, body["id"].(string)); final["state"] != "done" {
			t.Fatalf("%s job ended %v", g, final["state"])
		}
	}
	_, body := getJSON(t, ts, "/v1/graphs")
	resident := map[string]bool{}
	for _, gi := range body["graphs"].([]any) {
		m := gi.(map[string]any)
		resident[m["name"].(string)] = m["resident"] == true
	}
	if resident["g1"] || !resident["g2"] {
		t.Fatalf("eviction wrong: %v (want g1 evicted, g2 resident)", resident)
	}

	// g1 still serves after eviction — it reloads at a new epoch, so the
	// pre-eviction cached result must not be reused.
	_, body = postJob(t, ts, "", `{"algorithm":"cc","graph":"g1"}`)
	if body["cached"] == true {
		t.Fatal("stale cache entry survived an evict/reload cycle")
	}
	if final := waitState(t, ts, body["id"].(string)); final["state"] != "done" {
		t.Fatalf("g1 after eviction: %v", final["state"])
	}
}

func TestAlgorithmsListing(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{GraphDir: dir})
	code, body := getJSON(t, ts, "/v1/algorithms")
	if code != http.StatusOK {
		t.Fatalf("algorithms: %d", code)
	}
	algos := body["algorithms"].([]any)
	if len(algos) < 8 {
		t.Fatalf("only %d algorithms listed", len(algos))
	}
	first := algos[0].(map[string]any)
	if first["name"] == "" || first["values"] == "" {
		t.Fatalf("listing entry incomplete: %v", first)
	}
}

func TestJournalResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := t.TempDir()
	writeRing(t, dir, "ring", 256)

	// Server A: one worker, pinned by a slowed-down filler job, so the
	// durable job is still queued at shutdown.
	cfg := graphabcd.DefaultConfig(8)
	cfg.StallHook = func(string) { time.Sleep(time.Millisecond) }
	srvA, err := New(Options{
		GraphDir: dir, CheckpointDir: ckpt, MaxRunning: 1, QueueDepth: 4,
		EngineDefaults: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	if code, body := postJob(t, tsA, "", `{"algorithm":"pagerank","graph":"ring"}`); code != http.StatusAccepted {
		t.Fatalf("filler submit: %d (%v)", code, body)
	}
	code, durable := postJob(t, tsA, "acme", `{"algorithm":"cc","graph":"ring","durable":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("durable submit: %d (%v)", code, durable)
	}
	durableID := durable["id"].(string)
	tsA.Close()
	srvA.Close() // shutdown: no terminal journal record for the durable job

	// Server B resumes the journaled job during New.
	srvB, tsB := newTestServer(t, Options{GraphDir: dir, CheckpointDir: ckpt})
	_ = srvB
	final := waitState(t, tsB, durableID)
	if final["state"] != "done" {
		t.Fatalf("resumed job ended %v: %v", final["state"], final["error"])
	}
	if final["durable"] != true || final["tenant"] != "acme" {
		t.Fatalf("resumed job lost its identity: %v", final)
	}
}
