package serve

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"graphabcd"
	"graphabcd/internal/checkpoint"
)

// State is a job's position in the serving state machine:
//
//	queued -> running -> done | failed | cancelled
//
// A cache hit skips the machine entirely and materializes a done job.
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobRequest is the POST /v1/jobs body: which algorithm over which pooled
// graph, plus the algorithm parameters and engine knobs a tenant may set.
// It doubles as the journal record for durable jobs, so every field must
// round-trip through JSON.
type JobRequest struct {
	Algorithm string          `json:"algorithm"`
	Graph     string          `json:"graph"`
	Source    *uint32         `json:"source,omitempty"`
	Seeds     []uint32        `json:"seeds,omitempty"`
	Damping   float64         `json:"damping,omitempty"`
	MaxEpochs float64         `json:"max_epochs,omitempty"`
	Epsilon   *float64        `json:"epsilon,omitempty"`
	BlockSize int             `json:"block_size,omitempty"`
	Cluster   *ClusterRequest `json:"cluster,omitempty"`
	// Durable journals the job and checkpoints engine state under the
	// server's checkpoint directory; a restarted server resubmits it,
	// resuming from the last committed epoch.
	Durable bool `json:"durable,omitempty"`
}

// ClusterRequest selects the in-process distributed engine.
type ClusterRequest struct {
	Nodes          int `json:"nodes"`
	WorkersPerNode int `json:"workers_per_node"`
	BlockSize      int `json:"block_size,omitempty"`
}

// Job is one tracked submission.
type Job struct {
	ID      string
	Tenant  string
	Durable bool
	Req     *JobRequest

	mu        sync.Mutex
	state     State
	cached    bool
	created   time.Time
	started   time.Time
	finished  time.Time
	result    *graphabcd.JobResult
	err       error
	cancelReq bool
	cancel    context.CancelFunc
	done      chan struct{}
	events    []graphabcd.Event
	subs      map[chan graphabcd.Event]struct{}
	closed    bool // event stream terminal-delivered and subs closed
}

// maxEventLog bounds the per-job event history replayed to late SSE
// subscribers; older progress events are dropped, terminal events never.
const maxEventLog = 1024

// JobView is a consistent snapshot of a job for the HTTP layer.
type JobView struct {
	ID        string
	Tenant    string
	Algorithm string
	Graph     string
	State     State
	Cached    bool
	Durable   bool
	Created   time.Time
	Started   time.Time
	Finished  time.Time
	Err       string
	Result    *graphabcd.JobResult
}

// View snapshots the job under its lock.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, Tenant: j.Tenant, Algorithm: j.Req.Algorithm, Graph: j.Req.Graph,
		State: j.state, Cached: j.cached, Durable: j.Durable,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		v.Err = j.err.Error()
	}
	if j.state.Terminal() {
		v.Result = j.result
	}
	return v
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Subscribe returns a channel replaying the job's event history and then
// streaming live events; it is closed after the terminal event. Call the
// returned cancel function when done (safe after close).
func (j *Job) Subscribe() (<-chan graphabcd.Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan graphabcd.Event, len(j.events)+maxEventLog)
	for _, ev := range j.events {
		ch <- ev
	}
	if j.closed {
		close(ch)
		return ch, func() {}
	}
	if j.subs == nil {
		j.subs = make(map[chan graphabcd.Event]struct{})
	}
	j.subs[ch] = struct{}{}
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// broadcast appends ev to the history and fans it out. Progress events are
// dropped for slow subscribers; a terminal event evicts stale progress
// from the subscriber's buffer instead, then closes every subscription.
func (j *Job) broadcast(ev graphabcd.Event) {
	terminal := ev.Type == graphabcd.EventDone || ev.Type == graphabcd.EventFailed
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if len(j.events) >= maxEventLog {
		j.events = append(j.events[:0], j.events[1:]...)
	}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		if terminal {
			for delivered := false; !delivered; {
				select {
				case ch <- ev:
					delivered = true
				default:
					select {
					case <-ch:
					default:
					}
				}
			}
		} else {
			select {
			case ch <- ev:
			default:
			}
		}
	}
	if terminal {
		for ch := range j.subs {
			close(ch)
		}
		j.subs = nil
		j.closed = true
	}
}

// Manager owns the job table, the bounded queue, and the worker pool that
// drives submissions through a graphabcd.Runtime.
type Manager struct {
	rt       graphabcd.Runtime
	pool     *Pool
	cache    *Cache
	limiter  *Limiter
	base     *graphabcd.Config
	clock    func() time.Time
	log      *slog.Logger
	journal  *journal
	ckptDir  string
	ckptIntv time.Duration
	ckptSt   *checkpoint.DirStore

	ctx      context.Context
	cancel   context.CancelFunc
	queue    chan *Job
	wg       sync.WaitGroup
	seq      atomic.Int64
	shutdown atomic.Bool

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	doneJobs   atomic.Int64
	failedJobs atomic.Int64
}

type managerOptions struct {
	runtime    graphabcd.Runtime
	pool       *Pool
	cache      *Cache
	limiter    *Limiter
	base       *graphabcd.Config
	clock      func() time.Time
	log        *slog.Logger
	journal    *journal
	ckptDir    string
	ckptIntv   time.Duration
	maxRunning int
	queueDepth int
}

func newManager(o managerOptions) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		rt: o.runtime, pool: o.pool, cache: o.cache, limiter: o.limiter,
		base: o.base, clock: o.clock, log: o.log, journal: o.journal,
		ckptDir: o.ckptDir, ckptIntv: o.ckptIntv,
		ctx: ctx, cancel: cancel,
		queue: make(chan *Job, o.queueDepth),
		jobs:  make(map[string]*Job),
	}
	if m.ckptDir != "" {
		if st, err := checkpoint.NewDirStore(m.ckptDir); err == nil {
			m.ckptSt = st
		}
	}
	for i := 0; i < o.maxRunning; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit admits, registers, and enqueues one job. The error, when
// non-nil, wraps one of the graphabcd sentinels: ErrOverloaded (rate
// limit or full queue), ErrUnknownAlgorithm, or ErrGraphNotFound.
func (m *Manager) Submit(req *JobRequest, tenant string) (*Job, error) {
	if !m.limiter.Allow(tenant) {
		return nil, errRateLimited
	}
	return m.submit(req, tenant, "")
}

func (m *Manager) submit(req *JobRequest, tenant, id string) (*Job, error) {
	alg, err := graphabcd.LookupAlgorithm(req.Algorithm)
	if err != nil {
		return nil, err
	}
	req.Algorithm = alg.Name
	if err := validGraphName(req.Graph); err != nil {
		return nil, err
	}
	if !m.pool.Exists(req.Graph) {
		return nil, fmt.Errorf("%w: %q", graphabcd.ErrGraphNotFound, req.Graph)
	}
	if req.Durable && req.Cluster != nil {
		return nil, fmt.Errorf("serve: durable jobs are single-node only; drop \"cluster\" or \"durable\"")
	}
	if req.Durable && m.ckptDir == "" {
		return nil, fmt.Errorf("serve: durable jobs need a checkpoint directory; start the server with -ckpt-dir")
	}

	now := m.clock()
	if id == "" {
		id = fmt.Sprintf("j-%d", m.seq.Add(1))
	}
	job := &Job{
		ID: id, Tenant: tenant, Durable: req.Durable, Req: req,
		state: StateQueued, created: now, done: make(chan struct{}),
	}

	// A warm cache hit never touches the queue: the job materializes
	// directly in the done state with the shared cached result.
	if epoch, ok := m.pool.Resident(req.Graph); ok {
		key := cacheKey(req.Graph, epoch, req.Algorithm, canonicalParams(req))
		if res, ok := m.cache.Get(key); ok {
			m.finishCached(job, res)
			m.register(job)
			return job, nil
		}
	}

	if err := m.enqueue(job); err != nil {
		return nil, err
	}

	if job.Durable && m.journal != nil {
		if err := m.journal.append(journalRecord{ID: job.ID, Tenant: tenant, Request: req}); err != nil {
			m.log.Error("journal append failed; job will not survive a restart", "job", job.ID, "err", err)
		}
	}
	return job, nil
}

// enqueue registers job and reserves a queue slot under one lock, so a
// concurrent Close cannot close the queue between the check and the send;
// the send never blocks (default arm), so holding m.mu across it is safe.
func (m *Manager) enqueue(job *Job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errQueueFull
	}
	select {
	case m.queue <- job:
	default:
		return errQueueFull
	}
	m.jobs[job.ID] = job
	return nil
}

func (m *Manager) register(job *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[job.ID] = job
}

// finishCached completes job immediately from a cached result.
func (m *Manager) finishCached(job *Job, res *graphabcd.JobResult) {
	now := m.clock()
	job.mu.Lock()
	job.state = StateDone
	job.cached = true
	job.started, job.finished = now, now
	job.result = res
	job.mu.Unlock()
	close(job.done)
	job.broadcast(graphabcd.Event{Job: job.ID, Type: graphabcd.EventDone, Epoch: int(res.Stats.Epochs)})
	m.doneJobs.Add(1)
}

// Get returns the job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every tracked job, newest id last.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// Cancel stops a job: a queued job goes terminal immediately (the worker
// skips it), a running one gets its context cancelled and drains to the
// cancelled state with its partial result.
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	cancel, terminal := j.beginCancel(m.clock())
	if terminal {
		j.broadcast(graphabcd.Event{Job: id, Type: graphabcd.EventFailed, Err: "cancelled"})
		m.journalTerminal(j)
	}
	if cancel != nil {
		cancel()
	}
	return j, true
}

// beginCancel flips the job's state under its lock: a queued job goes
// terminal immediately (terminal=true; the caller broadcasts and journals
// outside the lock), a running one records the cancel request and hands
// back its context cancel to invoke.
func (j *Job) beginCancel(now time.Time) (cancel context.CancelFunc, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = now
		close(j.done)
		return nil, true
	case StateRunning:
		j.cancelReq = true
		return j.cancel, false
	default:
		return nil, false
	}
}

// QueueFull reports a saturated queue — the signal /readyz folds in so
// load balancers stop routing to a server that would only answer 503.
func (m *Manager) QueueFull() bool {
	return len(m.queue) == cap(m.queue)
}

// QueueDepth returns current and maximum queue length.
func (m *Manager) QueueDepth() (int, int) {
	return len(m.queue), cap(m.queue)
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.run(job)
	}
}

// start transitions the job queued→running under its lock, wiring a
// cancellable context derived from parent. ok=false means the job went
// terminal (cancelled) while it sat queued.
func (j *Job) start(parent context.Context, now time.Time) (jctx context.Context, cancel context.CancelFunc, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return nil, nil, false
	}
	jctx, cancel = context.WithCancel(parent)
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	return jctx, cancel, true
}

func (m *Manager) run(job *Job) {
	jctx, cancel, ok := job.start(m.ctx, m.clock())
	if !ok {
		return // cancelled while queued
	}
	defer cancel()

	if m.ctx.Err() != nil { // shutdown drain: don't load graphs or start engines
		m.finish(job, StateCancelled, nil, nil)
		return
	}

	g, epoch, release, err := m.pool.Acquire(job.Req.Graph)
	if err != nil {
		m.finish(job, StateFailed, nil, err)
		return
	}
	defer release()

	// Re-probe the cache now that the graph (and its epoch) is resident:
	// an identical job may have completed while this one sat queued.
	key := cacheKey(job.Req.Graph, epoch, job.Req.Algorithm, canonicalParams(job.Req))
	if res, ok := m.cache.Get(key); ok {
		job.mu.Lock()
		job.cached = true
		job.mu.Unlock()
		m.finish(job, StateDone, res, nil)
		return
	}

	spec, err := m.buildSpec(job, g)
	if err != nil {
		m.finish(job, StateFailed, nil, err)
		return
	}
	h, err := m.rt.Run(jctx, spec)
	if err != nil {
		m.finish(job, StateFailed, nil, err)
		return
	}
	for ev := range h.Events() {
		if ev.Type == graphabcd.EventEpoch {
			ev.Job = job.ID
			job.broadcast(ev)
		}
	}
	res, err := h.Result()

	// jctx.Err() covers both user cancellation and server shutdown; a
	// drained partial result must neither read as done nor be cached.
	job.mu.Lock()
	cancelled := job.cancelReq || jctx.Err() != nil
	job.mu.Unlock()
	switch {
	case err != nil:
		m.finish(job, StateFailed, nil, err)
	case cancelled:
		m.finish(job, StateCancelled, res, nil)
	default:
		m.finish(job, StateDone, res, nil)
		m.cache.Put(key, res)
	}
}

// buildSpec assembles the JobSpec: server-wide engine defaults, then the
// request's overrides, then the per-algorithm epoch budget for
// non-convergent workloads, then checkpoint wiring for durable jobs.
func (m *Manager) buildSpec(job *Job, g *graphabcd.Graph) (graphabcd.JobSpec, error) {
	req := job.Req
	var cfg graphabcd.Config
	if m.base != nil {
		cfg = *m.base
	} else {
		cfg = graphabcd.DefaultConfig(0) // Runtime applies the |V|/256 heuristic
	}
	cfg.Telemetry = nil // per-job registries only; a shared one would mix runs
	if req.BlockSize > 0 {
		cfg.BlockSize = req.BlockSize
	}
	if req.Epsilon != nil {
		cfg.Epsilon = *req.Epsilon
	}
	if req.MaxEpochs > 0 {
		cfg.MaxEpochs = req.MaxEpochs
	} else if cfg.MaxEpochs == 0 {
		if alg, err := graphabcd.LookupAlgorithm(req.Algorithm); err == nil && alg.DefaultMaxEpochs > 0 {
			cfg.MaxEpochs = alg.DefaultMaxEpochs
		}
	}
	if job.Durable && m.ckptDir != "" {
		runID := "job-" + job.ID
		cfg.Checkpoint.Dir = m.ckptDir
		cfg.Checkpoint.Interval = m.ckptIntv
		cfg.Checkpoint.RunID = runID
		if m.ckptSt != nil {
			if _, err := m.ckptSt.Load(runID); err == nil {
				cfg.Checkpoint.Resume = runID // committed state exists: resume it
			}
		}
	}
	opts := []graphabcd.JobOption{graphabcd.WithConfig(cfg)}
	if req.Source != nil {
		opts = append(opts, graphabcd.WithSource(*req.Source))
	}
	if len(req.Seeds) > 0 {
		opts = append(opts, graphabcd.WithSeeds(req.Seeds...))
	}
	if req.Damping != 0 {
		opts = append(opts, graphabcd.WithDamping(req.Damping))
	}
	if req.Cluster != nil {
		opts = append(opts, graphabcd.WithClusterConfig(graphabcd.ClusterConfig{
			Nodes:          req.Cluster.Nodes,
			WorkersPerNode: req.Cluster.WorkersPerNode,
			BlockSize:      req.Cluster.BlockSize,
		}))
	}
	return graphabcd.NewJobSpec(req.Algorithm, g, opts...), nil
}

func (m *Manager) finish(job *Job, state State, res *graphabcd.JobResult, err error) {
	job.mu.Lock()
	job.state = state
	job.finished = m.clock()
	job.result = res
	job.err = err
	job.mu.Unlock()
	close(job.done)
	var term graphabcd.Event
	if err != nil {
		term = graphabcd.Event{Job: job.ID, Type: graphabcd.EventFailed, Err: err.Error()}
	} else if state == StateCancelled {
		term = graphabcd.Event{Job: job.ID, Type: graphabcd.EventFailed, Err: "cancelled"}
	} else {
		term = graphabcd.Event{Job: job.ID, Type: graphabcd.EventDone}
		if res != nil {
			term.Epoch = int(res.Stats.Epochs)
		}
	}
	job.broadcast(term)
	if state == StateDone {
		m.doneJobs.Add(1)
	} else if state == StateFailed {
		m.failedJobs.Add(1)
	}
	m.journalTerminal(job)
}

// journalTerminal records a durable job's terminal state so a restarted
// server does not resubmit it. Deliberately skipped during shutdown: a
// durable job interrupted by shutdown must resume on the next boot.
func (m *Manager) journalTerminal(job *Job) {
	if !job.Durable || m.journal == nil || m.shutdown.Load() {
		return
	}
	job.mu.Lock()
	state := job.state
	job.mu.Unlock()
	if err := m.journal.append(journalRecord{ID: job.ID, State: string(state)}); err != nil {
		m.log.Error("journal terminal append failed", "job", job.ID, "err", err)
	}
}

// Resume resubmits every durable job the journal shows as non-terminal,
// seeding the id sequence past journaled ids. Jobs with committed
// checkpoint state restart from their last committed epoch (buildSpec
// probes the store); the rest start fresh.
func (m *Manager) Resume() (int, error) {
	if m.journal == nil {
		return 0, nil
	}
	pending, maxSeq, err := m.journal.replay()
	if err != nil {
		return 0, err
	}
	for cur := m.seq.Load(); cur < maxSeq; cur = m.seq.Load() {
		if m.seq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
	n := 0
	for _, rec := range pending {
		req := rec.Request
		req.Durable = true
		if _, err := m.submit(req, rec.Tenant, rec.ID); err != nil {
			m.log.Error("journal resume submit failed", "job", rec.ID, "err", err)
			continue
		}
		m.log.Info("resumed durable job from journal", "job", rec.ID, "algorithm", req.Algorithm, "graph", req.Graph)
		n++
	}
	return n, nil
}

// Close stops accepting jobs, cancels running ones, and waits for the
// workers. Durable jobs in flight are NOT journaled as terminal — that is
// what lets a restarted server resume them.
func (m *Manager) Close() {
	if !m.markClosed() {
		return
	}
	m.shutdown.Store(true)
	m.cancel()
	close(m.queue)
	m.wg.Wait()
	if m.journal != nil {
		m.journal.close()
	}
}

// markClosed flips the closed flag under the lock; false means Close
// already ran.
func (m *Manager) markClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.closed = true
	return true
}
