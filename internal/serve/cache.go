package serve

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"graphabcd"
)

// Cache is the LRU result cache. Keys carry the graph's pool epoch, so an
// evict/reload cycle (or a future snapshot refresh) invalidates every
// cached result for that graph without any explicit flush. Cached
// *JobResult values are shared — readers must not mutate them.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	ll      *list.List

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheItem struct {
	key string
	res *graphabcd.JobResult
}

// NewCache returns an LRU cache holding up to capacity results;
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{cap: capacity, entries: make(map[string]*list.Element), ll: list.New()}
}

// Get returns the cached result for key, if any.
func (c *Cache) Get(key string) (*graphabcd.JobResult, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheItem).res, true
}

// Put stores res under key, evicting the least recently used entry when
// the cache is full.
func (c *Cache) Put(key string, res *graphabcd.JobResult) {
	if c.cap <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheItem{key: key, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*cacheItem).key)
	}
}

// Stats returns cumulative hit/miss counts and the current entry count.
func (c *Cache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), n
}

// cacheKey builds the result-cache key: graph name at its pool epoch, the
// canonical algorithm name, and an FNV-64a hash of the canonical parameter
// string. Two requests that differ only in parameter spelling or ordering
// hash identically because canonicalParams normalizes first.
func cacheKey(graph string, epoch uint64, algorithm, params string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(params))
	return fmt.Sprintf("%s@%d/%s/%016x", graph, epoch, algorithm, h.Sum64())
}

// canonicalParams serializes the result-relevant request fields in a fixed
// order. Fields that cannot change the result (durable, tenant) are
// excluded; engine knobs that can change it on non-convergent workloads
// (max_epochs, epsilon, block_size, cluster shape) are included.
func canonicalParams(req *JobRequest) string {
	var b strings.Builder
	if req.Source != nil {
		b.WriteString(fmt.Sprintf("src=%d;", *req.Source))
	}
	if len(req.Seeds) > 0 {
		seeds := append([]uint32(nil), req.Seeds...)
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
		b.WriteString("seeds=")
		for i, s := range seeds {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(uint64(s), 10))
		}
		b.WriteByte(';')
	}
	if req.Damping != 0 {
		b.WriteString(fmt.Sprintf("damp=%g;", req.Damping))
	}
	if req.MaxEpochs != 0 {
		b.WriteString(fmt.Sprintf("me=%g;", req.MaxEpochs))
	}
	if req.Epsilon != nil {
		b.WriteString(fmt.Sprintf("eps=%g;", *req.Epsilon))
	}
	if req.BlockSize != 0 {
		b.WriteString(fmt.Sprintf("bs=%d;", req.BlockSize))
	}
	if req.Cluster != nil {
		b.WriteString(fmt.Sprintf("cluster=%dx%d@%d;", req.Cluster.Nodes, req.Cluster.WorkersPerNode, req.Cluster.BlockSize))
	}
	return b.String()
}
