package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// journalRecord is one JSONL line in the durable-job journal. A record
// with a Request is a submission; a record with a State is a terminal
// marker. A submission without a later terminal marker is resubmitted on
// the next server start.
type journalRecord struct {
	ID      string      `json:"id"`
	Tenant  string      `json:"tenant,omitempty"`
	Request *JobRequest `json:"request,omitempty"`
	State   string      `json:"state,omitempty"`
}

// journal is the append-only durable-job log, stored as jobs.jsonl next
// to the engine's checkpoint runs so one -ckpt-dir carries both the job
// intent (here) and the job state (checkpoint epochs).
type journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

func openJournal(dir string) (*journal, error) {
	path := filepath.Join(dir, "jobs.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening job journal: %w", err)
	}
	return &journal{path: path, f: f}, nil
}

func (j *journal) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: job journal closed")
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// replay scans the journal and returns the still-pending submissions in
// journal order, plus the highest numeric id seen (so the manager seeds
// its sequence past resubmitted ids). Duplicate submissions of one id —
// a job resumed more than once — collapse to the latest. Torn trailing
// lines from a crash mid-append are skipped, not fatal.
func (j *journal) replay() ([]journalRecord, int64, error) {
	j.mu.Lock()
	path := j.path
	j.mu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()

	var (
		order   []string
		pending = map[string]journalRecord{}
		maxSeq  int64
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue // torn write at a crash boundary
		}
		if n, ok := strings.CutPrefix(rec.ID, "j-"); ok {
			if v, err := strconv.ParseInt(n, 10, 64); err == nil && v > maxSeq {
				maxSeq = v
			}
		}
		switch {
		case rec.Request != nil:
			if _, seen := pending[rec.ID]; !seen {
				order = append(order, rec.ID)
			}
			pending[rec.ID] = rec
		case rec.State != "":
			delete(pending, rec.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	out := make([]journalRecord, 0, len(pending))
	for _, id := range order {
		if rec, ok := pending[id]; ok {
			out = append(out, rec)
		}
	}
	return out, maxSeq, nil
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
}
