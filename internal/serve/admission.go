package serve

import (
	"fmt"
	"sync"
	"time"

	"graphabcd"
)

// Admission-control rejections. Both wrap graphabcd.ErrOverloaded so
// callers outside the HTTP layer can errors.Is on the sentinel; the HTTP
// layer distinguishes them to pick 429 (per-tenant rate) vs 503 (shared
// queue), matching the retry semantics each implies.
var (
	errRateLimited = fmt.Errorf("%w: tenant rate limit exceeded", graphabcd.ErrOverloaded)
	errQueueFull   = fmt.Errorf("%w: job queue full", graphabcd.ErrOverloaded)
)

// Limiter is a per-tenant token bucket: each tenant holds up to burst
// tokens, refilled at rate tokens/second, and a job submission costs one.
// rate 0 with a positive burst gives each tenant a fixed quota that never
// refills — which is also what makes admission tests deterministic.
type Limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter returns a limiter; burst <= 0 disables limiting entirely.
// now is the clock (nil means time.Now) — injectable so tests control
// refill instead of sleeping.
func NewLimiter(rate float64, burst int, now func() time.Time) *Limiter {
	if now == nil {
		now = time.Now
	}
	return &Limiter{rate: rate, burst: float64(burst), now: now, buckets: make(map[string]*bucket)}
}

// Allow takes one token from tenant's bucket, reporting whether the
// submission is admitted.
func (l *Limiter) Allow(tenant string) bool {
	if l == nil || l.burst <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.now()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[tenant] = b
	}
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
