// Package serve is the graph-analytics serving layer behind cmd/graphabcdd:
// a warm graph pool over on-disk snapshots, a bounded job subsystem on the
// public graphabcd.Runtime, a result cache keyed by graph epoch, and
// per-tenant admission control. The HTTP surface lives in http.go; every
// error it maps to a status code is a graphabcd sentinel (errors.Is).
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"graphabcd"
	"graphabcd/internal/telemetry"
)

// Pool is the warm graph pool: snapshots (.gabs/.gabz) load by name from a
// directory, stay resident while referenced, and are LRU-evicted once the
// resident set exceeds the memory budget. Loads flip the server's Health
// to not-ready — a scrape mid-load should steer traffic elsewhere — and
// flip it back when the pool drains to zero in-flight loads.
type Pool struct {
	dir    string
	budget int64 // bytes; <= 0 means unlimited
	health *telemetry.Health

	mu      sync.Mutex
	entries map[string]*poolEntry
	loading map[string]chan struct{}
	epochs  map[string]uint64 // per-name load counter; survives eviction
	used    int64
	tick    int64 // LRU clock
	loads   int   // in-flight loads, drives the health flip
}

type poolEntry struct {
	g       *graphabcd.Graph
	epoch   uint64
	bytes   int64
	refs    int
	lastUse int64
}

// GraphInfo describes one pool entry for GET /v1/graphs.
type GraphInfo struct {
	Name     string `json:"name"`
	Resident bool   `json:"resident"`
	Vertices int    `json:"vertices,omitempty"`
	Edges    int    `json:"edges,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Refs     int    `json:"refs,omitempty"`
}

// NewPool returns a pool over dir. budget <= 0 disables eviction. health
// may be nil (no readiness flips).
func NewPool(dir string, budget int64, health *telemetry.Health) *Pool {
	return &Pool{
		dir:     dir,
		budget:  budget,
		health:  health,
		entries: make(map[string]*poolEntry),
		loading: make(map[string]chan struct{}),
		epochs:  make(map[string]uint64),
	}
}

// Acquire resolves name to a resident graph, loading the snapshot on a
// cold hit, and takes a reference that pins the graph against eviction.
// The returned epoch increments on every (re)load of the name, so a cache
// key carrying it can never alias results across an evict/reload cycle.
// Call release exactly once when the job is done with the graph.
func (p *Pool) Acquire(name string) (g *graphabcd.Graph, epoch uint64, release func(), err error) {
	if err := validGraphName(name); err != nil {
		return nil, 0, nil, err
	}
	for {
		g, epoch, release, wait, start := p.tryAcquire(name)
		switch {
		case g != nil:
			return g, epoch, release, nil
		case wait != nil:
			<-wait // someone else is loading it; retry (they may have failed)
		default:
			return p.load(name, start)
		}
	}
}

// tryAcquire is Acquire's locked step: a hit takes a reference (g non-nil),
// an in-flight load hands back its marker to wait on, and a cold miss
// registers a new in-flight load and returns its channel as start.
func (p *Pool) tryAcquire(name string) (g *graphabcd.Graph, epoch uint64, release func(), wait <-chan struct{}, start chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[name]; ok {
		e.refs++
		p.tick++
		e.lastUse = p.tick
		return e.g, e.epoch, p.releaseFunc(name), nil, nil
	}
	if ch, ok := p.loading[name]; ok {
		return nil, 0, nil, ch, nil
	}
	ch := make(chan struct{})
	p.loading[name] = ch
	p.loads++
	if p.loads == 1 && p.health != nil {
		p.health.SetReady(false, "loading graph "+name)
	}
	return nil, 0, nil, nil, ch
}

// load reads the snapshot outside the lock; ch is the in-flight marker
// every concurrent Acquire of the same name waits on.
func (p *Pool) load(name string, ch chan struct{}) (*graphabcd.Graph, uint64, func(), error) {
	g, err := p.loadFile(name)
	epoch, release := p.install(name, g, err)
	close(ch)
	if err != nil {
		return nil, 0, nil, err
	}
	return g, epoch, release, nil
}

// install is load's locked step: it retires the in-flight marker (flipping
// health back once the pool drains) and, on success, registers the graph
// at the next epoch with one reference already taken.
func (p *Pool) install(name string, g *graphabcd.Graph, err error) (uint64, func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.loading, name)
	p.loads--
	if p.loads == 0 && p.health != nil {
		p.health.SetReady(true, "serving")
	}
	if err != nil {
		return 0, nil
	}
	p.epochs[name]++
	e := &poolEntry{g: g, epoch: p.epochs[name], bytes: g.MemoryBytes(), refs: 1}
	p.tick++
	e.lastUse = p.tick
	p.entries[name] = e
	p.used += e.bytes
	p.evictLocked()
	return e.epoch, p.releaseFunc(name)
}

func (p *Pool) loadFile(name string) (*graphabcd.Graph, error) {
	var lastErr error
	for _, ext := range []string{"", ".gabs", ".gabz"} {
		path := filepath.Join(p.dir, name+ext)
		if _, err := os.Stat(path); err != nil {
			lastErr = err
			continue
		}
		g, err := graphabcd.Load(path)
		if err != nil {
			return nil, fmt.Errorf("serve: loading graph %q from %s: %w", name, path, err)
		}
		return g, nil
	}
	return nil, fmt.Errorf("%w: %q in %s (%v)", graphabcd.ErrGraphNotFound, name, p.dir, lastErr)
}

func (p *Pool) releaseFunc(name string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			if e, ok := p.entries[name]; ok && e.refs > 0 {
				e.refs--
			}
			p.evictLocked()
			p.mu.Unlock()
		})
	}
}

// evictLocked drops least-recently-used unreferenced graphs until the
// resident set fits the budget. A single referenced graph may overcommit
// the budget — refusing a running job's graph would be worse.
func (p *Pool) evictLocked() {
	if p.budget <= 0 {
		return
	}
	for p.used > p.budget {
		victim := ""
		var oldest int64
		for name, e := range p.entries {
			if e.refs > 0 {
				continue
			}
			if victim == "" || e.lastUse < oldest {
				victim, oldest = name, e.lastUse
			}
		}
		if victim == "" {
			return // everything resident is pinned
		}
		p.used -= p.entries[victim].bytes
		delete(p.entries, victim)
	}
}

// Exists reports whether name resolves to a resident graph or an on-disk
// snapshot — the submit-time check that turns a typo into an immediate
// 404 instead of an asynchronously failed job.
func (p *Pool) Exists(name string) bool {
	if err := validGraphName(name); err != nil {
		return false
	}
	if _, ok := p.Resident(name); ok {
		return true
	}
	for _, ext := range []string{"", ".gabs", ".gabz"} {
		if _, err := os.Stat(filepath.Join(p.dir, name+ext)); err == nil {
			return true
		}
	}
	return false
}

// Resident reports whether name is currently loaded and its epoch.
func (p *Pool) Resident(name string) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[name]
	if !ok {
		return 0, false
	}
	return e.epoch, true
}

// UsedBytes returns the resident-set size.
func (p *Pool) UsedBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// List merges the on-disk snapshot inventory with the resident set,
// sorted by name.
func (p *Pool) List() []GraphInfo {
	names := map[string]bool{}
	if ents, err := os.ReadDir(p.dir); err == nil {
		for _, de := range ents {
			n := de.Name()
			for _, ext := range []string{".gabs", ".gabz"} {
				if strings.HasSuffix(n, ext) {
					names[strings.TrimSuffix(n, ext)] = true
				}
			}
		}
	}
	p.mu.Lock()
	for name := range p.entries {
		names[name] = true
	}
	out := make([]GraphInfo, 0, len(names))
	for name := range names {
		info := GraphInfo{Name: name}
		if e, ok := p.entries[name]; ok {
			info.Resident = true
			info.Vertices = e.g.NumVertices()
			info.Edges = e.g.NumEdges()
			info.Bytes = e.bytes
			info.Epoch = e.epoch
			info.Refs = e.refs
		}
		out = append(out, info)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// validGraphName rejects names that would escape the snapshot directory.
func validGraphName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("%w: invalid graph name %q", graphabcd.ErrGraphNotFound, name)
	}
	return nil
}
