package graphmat

import (
	"math"

	"graphabcd/internal/bcd"
	"graphabcd/internal/graph"
)

// PageRank is GraphMat's PR program: message x/outdeg, sum reduction,
// damped apply. Eps is the per-vertex change threshold that keeps a vertex
// active; zero means 1e-9.
type PageRank struct {
	Damping float64
	Eps     float64
}

func (p PageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

func (p PageRank) eps() float64 {
	if p.Eps == 0 {
		return 1e-9
	}
	return p.Eps
}

// Name implements Program.
func (PageRank) Name() string { return "pagerank" }

// Init implements Program.
func (PageRank) Init(_ uint32, g *graph.Graph) float64 { return 1 / float64(g.NumVertices()) }

// Send implements Program.
func (PageRank) Send(v uint32, val float64, g *graph.Graph) (float64, bool) {
	if deg := g.OutDegree(v); deg > 0 {
		return val / float64(deg), true
	}
	return 0, false
}

// Process implements Program.
func (PageRank) Process(msg float64, _ float32) float64 { return msg }

// Identity implements Program.
func (PageRank) Identity() float64 { return 0 }

// Reduce implements Program.
func (PageRank) Reduce(a, b float64) float64 { return a + b }

// Apply implements Program. PR is dense, so received=false means the
// vertex has no in-edges at all and its rank is the bare teleport term —
// acc is the identity 0 in that case, so the formula covers both.
func (p PageRank) Apply(_ uint32, _ float64, acc float64, _ bool, g *graph.Graph) float64 {
	d := p.damping()
	return (1-d)/float64(g.NumVertices()) + d*acc
}

// Changed implements Program.
func (p PageRank) Changed(old, new float64) bool { return math.Abs(new-old) > p.eps() }

// Dense implements Program: PR sums need every source every sweep.
func (PageRank) Dense() bool { return true }

// SSSP is GraphMat's SSSP: distance messages with min-plus semantics. The
// active-vertex filter gives GraphMat its data-driven SSSP behaviour.
type SSSP struct{ Source uint32 }

// Name implements Program.
func (SSSP) Name() string { return "sssp" }

// Init implements Program.
func (s SSSP) Init(v uint32, _ *graph.Graph) float64 {
	if v == s.Source {
		return 0
	}
	return math.Inf(1)
}

// Send implements Program: unreached vertices have nothing to offer.
func (SSSP) Send(_ uint32, val float64, _ *graph.Graph) (float64, bool) {
	return val, !math.IsInf(val, 1)
}

// Process implements Program.
func (SSSP) Process(msg float64, w float32) float64 { return msg + float64(w) }

// Identity implements Program.
func (SSSP) Identity() float64 { return math.Inf(1) }

// Reduce implements Program.
func (SSSP) Reduce(a, b float64) float64 { return math.Min(a, b) }

// Apply implements Program.
func (SSSP) Apply(_ uint32, old float64, acc float64, received bool, _ *graph.Graph) float64 {
	if received && acc < old {
		return acc
	}
	return old
}

// Changed implements Program.
func (SSSP) Changed(old, new float64) bool { return new < old }

// Dense implements Program: min-plus tolerates the active filter.
func (SSSP) Dense() bool { return false }

// BFS is GraphMat's breadth-first search by level propagation.
type BFS struct{ Source uint32 }

// Name implements Program.
func (BFS) Name() string { return "bfs" }

// Init implements Program.
func (b BFS) Init(v uint32, _ *graph.Graph) uint64 {
	if v == b.Source {
		return 0
	}
	return bcd.Unreached
}

// Send implements Program.
func (BFS) Send(_ uint32, val uint64, _ *graph.Graph) (uint64, bool) {
	return val, val != bcd.Unreached
}

// Process implements Program.
func (BFS) Process(msg uint64, _ float32) uint64 { return msg + 1 }

// Identity implements Program.
func (BFS) Identity() uint64 { return bcd.Unreached }

// Reduce implements Program.
func (BFS) Reduce(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Apply implements Program.
func (BFS) Apply(_ uint32, old uint64, acc uint64, received bool, _ *graph.Graph) uint64 {
	if received && acc < old {
		return acc
	}
	return old
}

// Changed implements Program.
func (BFS) Changed(old, new uint64) bool { return new < old }

// Dense implements Program.
func (BFS) Dense() bool { return false }

// CC is GraphMat's connected components by min-label propagation.
type CC struct{}

// Name implements Program.
func (CC) Name() string { return "cc" }

// Init implements Program.
func (CC) Init(v uint32, _ *graph.Graph) uint64 { return uint64(v) }

// Send implements Program.
func (CC) Send(_ uint32, val uint64, _ *graph.Graph) (uint64, bool) { return val, true }

// Process implements Program.
func (CC) Process(msg uint64, _ float32) uint64 { return msg }

// Identity implements Program.
func (CC) Identity() uint64 { return bcd.Unreached }

// Reduce implements Program.
func (CC) Reduce(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Apply implements Program.
func (CC) Apply(_ uint32, old uint64, acc uint64, received bool, _ *graph.Graph) uint64 {
	if received && acc < old {
		return acc
	}
	return old
}

// Changed implements Program.
func (CC) Changed(old, new uint64) bool { return new < old }

// Dense implements Program.
func (CC) Dense() bool { return false }

// CFMsg is the message algebra that makes Collaborative Filtering
// expressible in pure message passing (as GraphMat's CF does): because
// sum over ratings of (r - x_i.x_j) x_j  ==  b - A x_i with
// b = sum of r*x_j and A = sum of x_j x_j^T, the per-edge messages carry
// (r*x_j, x_j x_j^T) and reduce by elementwise addition; Apply then takes
// the same gradient step as the GraphABCD CF program — the two frameworks
// compute bit-comparable updates from identical inputs.
type CFMsg struct {
	B []float64 // K
	A []float64 // K*K, row-major
}

// CF is GraphMat's collaborative filtering program. Configure it with the
// same rank/rates as the bcd.CF program for apples-to-apples comparisons.
type CF struct {
	Rank      int
	LearnRate float64
	Lambda    float64
	Seed      uint64
}

func (c CF) bcd() bcd.CF {
	return bcd.CF{Rank: c.Rank, LearnRate: c.LearnRate, Lambda: c.Lambda, Seed: c.Seed}
}

func (c CF) rank() int {
	if c.Rank == 0 {
		return 8
	}
	return c.Rank
}

func (c CF) learnRate() float64 {
	if c.LearnRate == 0 {
		return 0.2
	}
	return c.LearnRate
}

func (c CF) lambda() float64 {
	if c.Lambda == 0 {
		return 0.01
	}
	return c.Lambda
}

// Name implements Program.
func (CF) Name() string { return "cf" }

// Init implements Program: identical deterministic factors to bcd.CF.
func (c CF) Init(v uint32, g *graph.Graph) []float32 { return c.bcd().Init(v, g) }

// Identity implements Program.
func (c CF) Identity() CFMsg {
	k := c.rank()
	return CFMsg{B: make([]float64, k), A: make([]float64, k*k)}
}

// Reduce implements Program.
func (CF) Reduce(a, b CFMsg) CFMsg {
	for i := range a.B {
		a.B[i] += b.B[i]
	}
	for i := range a.A {
		a.A[i] += b.A[i]
	}
	return a
}

// Apply implements Program: gradient step x += lr*(grad/deg - lambda*x)
// with grad = B - A x.
func (c CF) Apply(v uint32, old []float32, acc CFMsg, received bool, g *graph.Graph) []float32 {
	if !received {
		return old
	}
	k := len(old)
	deg := float64(g.InDegree(v))
	lr, lam := c.learnRate(), c.lambda()
	//abcdlint:ignore hotalloc,hotpath -- fresh per-vertex value; the sweep still reads old for the gradient
	out := make([]float32, k)
	for i := 0; i < k; i++ {
		ax := 0.0
		for j := 0; j < k; j++ {
			ax += acc.A[i*k+j] * float64(old[j])
		}
		grad := acc.B[i] - ax
		out[i] = float32(float64(old[i]) + lr*(grad/deg-lam*float64(old[i])))
	}
	return out
}

// Dense implements Program: the gradient needs every rating every sweep.
func (CF) Dense() bool { return true }

// Changed implements Program: CF iterates until its budget.
func (CF) Changed(old, new []float32) bool {
	for i := range old {
		if old[i] != new[i] {
			return true
		}
	}
	return false
}

var _ Program[[]float32, CFMsg] = cfAdapter{}

// cfAdapter lifts CF into Program[[]float32, CFMsg] by fusing Send+Process
// (the message is the factor vector; processing expands it with the
// rating). NewCF returns the adapter ready to run.
type cfAdapter struct{ CF }

// NewCF builds the runnable GraphMat CF program.
func NewCF(c CF) Program[[]float32, CFMsg] { return cfAdapter{c} }

// Send implements Program: emit the raw factor; expansion happens in
// Process, which needs the edge's rating.
func (a cfAdapter) Send(v uint32, val []float32, g *graph.Graph) (CFMsg, bool) {
	// Defer expansion: pack the factor into B and mark A nil; Process
	// finishes the job. This keeps Send cheap for high-degree vertices.
	k := len(val)
	b := make([]float64, k) //abcdlint:ignore hotalloc,hotpath -- false positive: name-based interface resolution reaches this from cluster.Transport.Send; graphmat's sweep never runs under the cluster's hot roots
	for i := range val {
		b[i] = float64(val[i])
	}
	return CFMsg{B: b}, true
}

// Process implements Program.
func (a cfAdapter) Process(msg CFMsg, w float32) CFMsg {
	k := len(msg.B)
	out := CFMsg{B: make([]float64, k), A: make([]float64, k*k)}
	for i := 0; i < k; i++ {
		out.B[i] = float64(w) * msg.B[i]
		for j := 0; j < k; j++ {
			out.A[i*k+j] = msg.B[i] * msg.B[j]
		}
	}
	return out
}
