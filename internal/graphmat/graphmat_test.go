package graphmat

import (
	"math"
	"testing"

	"graphabcd/internal/bcd"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(9, 6, 77))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Threads: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Threads: 0}).Validate(); err == nil {
		t.Fatal("want error for zero threads")
	}
	if err := (Config{Threads: 1, MaxIters: -1}).Validate(); err == nil {
		t.Fatal("want error for negative MaxIters")
	}
	if _, err := Run[float64, float64](testGraph(t), PageRank{}, Config{}); err == nil {
		t.Fatal("Run accepted invalid config")
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := testGraph(t)
	res, err := Run[float64, float64](g, PageRank{Eps: 1e-12}, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge")
	}
	want := bcd.RefPageRank(g, 0.85, 1e-13, 1000)
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-9 {
			t.Fatalf("rank[%d] off by %g", v, d)
		}
	}
	if res.Stats.Iterations < 10 {
		t.Fatalf("PR converged suspiciously fast: %d sweeps", res.Stats.Iterations)
	}
	if res.Stats.EdgesTraversed == 0 || res.Stats.VertexUpdates == 0 {
		t.Fatal("stats empty")
	}
}

func TestSSSPExactAndSparse(t *testing.T) {
	cfg := gen.DefaultRMAT(9, 6, 78)
	cfg.MaxWeight = 16
	g, err := gen.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := uint32(3)
	res, err := Run[float64, float64](g, SSSP{Source: src}, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := bcd.RefSSSP(g, src)
	for v := range want {
		got := res.Values[v]
		if got != want[v] && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %g, want %g", v, got, want[v])
		}
	}
	// The active filter must keep SSSP's edge work well under
	// iterations * |E| (the dense cost).
	dense := int64(res.Stats.Iterations) * int64(g.NumEdges())
	if res.Stats.EdgesTraversed >= dense {
		t.Fatalf("SSSP scanned %d edges, dense would be %d — active filter broken",
			res.Stats.EdgesTraversed, dense)
	}
}

func TestBFSAndCCMatchReferences(t *testing.T) {
	g := testGraph(t)
	src := uint32(1)
	bres, err := Run[uint64, uint64](g, BFS{Source: src}, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range bcd.RefBFS(g, src) {
		if bres.Values[v] != want {
			t.Fatalf("bfs level[%d] = %d, want %d", v, bres.Values[v], want)
		}
	}
	cres, err := Run[uint64, uint64](g, CC{}, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range bcd.RefCC(g) {
		if cres.Values[v] != want {
			t.Fatalf("cc label[%d] = %d, want %d", v, cres.Values[v], want)
		}
	}
}

func TestCFLearnsAndMatchesBCDCF(t *testing.T) {
	rg, err := gen.Rating(gen.DefaultRating(50, 25, 500, 5))
	if err != nil {
		t.Fatal(err)
	}
	params := CF{Rank: 8, LearnRate: 0.3, Lambda: 0.01}
	prog := NewCF(params)
	res, err := Run[[]float32, CFMsg](rg.Graph, prog, Config{Threads: 4, MaxIters: 25})
	if err != nil {
		t.Fatal(err)
	}
	eval := params.bcd()
	init := make([][]float32, rg.Graph.NumVertices())
	for v := range init {
		init[v] = params.Init(uint32(v), rg.Graph)
	}
	before := eval.RMSE(rg.Graph, init)
	after := eval.RMSE(rg.Graph, res.Values)
	if after >= before*0.6 {
		t.Fatalf("GraphMat CF RMSE %g -> %g: did not learn", before, after)
	}
	if res.Stats.Iterations != 25 {
		t.Fatalf("iterations = %d, want budget 25", res.Stats.Iterations)
	}
}

// The CF message algebra (B - A x) must equal the direct per-edge gradient
// that the GraphABCD engine computes.
func TestCFMessageAlgebraEquivalence(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 4}, {Src: 1, Dst: 0, Weight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	params := CF{Rank: 4, LearnRate: 0.5, Lambda: 0.001}
	bc := params.bcd()
	x0, x1 := params.Init(0, g), params.Init(1, g)

	// Direct gather (GraphABCD path) at vertex 1.
	acc := bc.NewAccum()
	bc.ResetAccum(&acc)
	bc.EdgeGather(&acc, x1, 4, x0)
	direct := bc.Apply(1, x1, &acc, 1, g)

	// Message path (GraphMat).
	prog := NewCF(params)
	msg, ok := prog.Send(0, x0, g)
	if !ok {
		t.Fatal("Send refused")
	}
	m := prog.Process(msg, 4)
	viaMsg := prog.Apply(1, x1, m, true, g)

	for k := range direct {
		if math.Abs(float64(direct[k]-viaMsg[k])) > 1e-6 {
			t.Fatalf("lane %d: direct %g vs message %g", k, direct[k], viaMsg[k])
		}
	}
}

func TestMaxItersBounds(t *testing.T) {
	g := testGraph(t)
	res, err := Run[float64, float64](g, PageRank{Eps: 0}, Config{Threads: 2, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 3 || res.Stats.Converged {
		t.Fatalf("iterations = %d converged = %v, want 3/false", res.Stats.Iterations, res.Stats.Converged)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[float64, float64](g, PageRank{}, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 || !res.Stats.Converged {
		t.Fatal("empty graph run wrong")
	}
}

func TestStatsMTEPS(t *testing.T) {
	if (Stats{}).MTEPS() != 0 {
		t.Fatal("zero stats MTEPS must be 0")
	}
}

// Regression for the dense-sweep rule: sum-based programs must gather from
// every source every sweep, even sources that have individually converged.
// On a star (spokes -> hub), the spokes converge after one sweep; if the
// active filter wrongly silenced them, the hub's sum would be truncated
// and oscillate instead of converging to the reference.
func TestDensePageRankStarRegression(t *testing.T) {
	var edges []graph.Edge
	const spokes = 20
	for s := uint32(1); s <= spokes; s++ {
		edges = append(edges, graph.Edge{Src: s, Dst: 0, Weight: 1})
	}
	edges = append(edges, graph.Edge{Src: 0, Dst: 1, Weight: 1})
	g, err := graph.FromEdges(spokes+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run[float64, float64](g, PageRank{Eps: 1e-13}, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("did not converge")
	}
	want := bcd.RefPageRank(g, 0.85, 1e-14, 2000)
	for v := range want {
		if d := math.Abs(res.Values[v] - want[v]); d > 1e-10 {
			t.Fatalf("rank[%d] off by %g — dense sweep truncated a sum", v, d)
		}
	}
}
