// Package graphmat re-implements the GraphMat framework (Sundaram et al.,
// VLDB 2015), the paper's software baseline: a generalized-SpMV,
// bulk-synchronous GAS engine with block size |V| (Jacobi iteration) and
// per-sweep active-vertex filtering.
//
// GraphMat programs are push-style: each active vertex emits a message,
// edges transform it (ProcessMessage), messages reduce per destination,
// and Apply commits. For deterministic parallelism we evaluate the SpMV
// pull-side (per destination over in-edges whose source is active), which
// computes the identical fixpoint while only counting work for active
// sources — exactly the active-list optimization that, as Sec. V-C
// observes, shrinks GraphMat's effective block size on SSSP.
package graphmat

import (
	"fmt"
	"sync"
	"time"

	"graphabcd/internal/graph"
)

// Program is a GraphMat-style vertex program over values V and messages M.
// Implementations must be stateless.
type Program[V, M any] interface {
	// Name identifies the algorithm.
	Name() string
	// Init returns vertex v's initial value; every vertex starts active.
	Init(v uint32, g *graph.Graph) V
	// Send emits vertex v's message for this sweep; ok=false emits none.
	Send(v uint32, val V, g *graph.Graph) (msg M, ok bool)
	// Process transforms a message crossing an edge with the given weight.
	Process(msg M, weight float32) M
	// Identity returns the reduction identity.
	Identity() M
	// Reduce combines two processed messages.
	Reduce(a, b M) M
	// Apply commits the reduced message at vertex v; received=false means
	// no message arrived this sweep.
	Apply(v uint32, old V, acc M, received bool, g *graph.Graph) V
	// Changed reports whether the update was material — a changed vertex
	// is active (sends) in the next sweep.
	Changed(old, new V) bool
	// Dense reports whether every vertex must send every sweep. Sum-based
	// reductions (PageRank, CF) are dense: skipping a converged source
	// would truncate its neighbours' sums. Monotone min-based programs
	// (SSSP, BFS, CC) return false and profit from the active filter —
	// the data-driven behaviour Sec. V-C credits GraphMat's SSSP with.
	Dense() bool
}

// Config parameterizes a GraphMat run.
type Config struct {
	// Threads is the parallel worker count (the paper runs 14).
	Threads int
	// MaxIters bounds the sweeps; 0 means run until no vertex changes.
	MaxIters int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Threads <= 0 {
		return fmt.Errorf("graphmat: Threads must be positive, got %d", c.Threads)
	}
	if c.MaxIters < 0 {
		return fmt.Errorf("graphmat: negative MaxIters %d", c.MaxIters)
	}
	return nil
}

// Stats summarizes a run. Iterations counts full BSP sweeps — the
// "# of iterations" GraphMat reports in Table III.
type Stats struct {
	Iterations     int
	EdgesTraversed int64 // in-edges scanned from active sources
	VertexUpdates  int64 // Apply executions on vertices receiving messages
	Converged      bool
	WallTime       time.Duration
}

// MTEPS returns millions of traversed edges per second of wall time.
func (s Stats) MTEPS() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.EdgesTraversed) / s.WallTime.Seconds() / 1e6
}

// Result bundles final values and statistics.
type Result[V any] struct {
	Values []V
	Stats  Stats
}

// Run executes prog over g to convergence (or MaxIters).
func Run[V, M any](g *graph.Graph, prog Program[V, M], cfg Config) (*Result[V], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	x := make([]V, n)
	next := make([]V, n)
	active := make([]bool, n)
	nextActive := make([]bool, n)
	for v := 0; v < n; v++ {
		x[v] = prog.Init(uint32(v), g)
		active[v] = true
	}
	// Messages are recomputed per sweep from the frozen x, so Send is
	// evaluated lazily per source on the pull side.
	var stats Stats
	start := time.Now()
	for n > 0 {
		if cfg.MaxIters > 0 && stats.Iterations >= cfg.MaxIters {
			break
		}
		stats.Iterations++
		var wg sync.WaitGroup
		var edgeCnt, applyCnt int64
		var cntMu sync.Mutex
		anyChanged := false
		for w := 0; w < cfg.Threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo, hi := w*n/cfg.Threads, (w+1)*n/cfg.Threads
				dense := prog.Dense()
				var edges, applies int64
				changed := false
				for v := lo; v < hi; v++ {
					acc := prog.Identity()
					received := false
					for s := g.InOffset(v); s < g.InOffset(v+1); s++ {
						src := g.InSrc(s)
						if !dense && !active[src] {
							continue
						}
						msg, ok := prog.Send(src, x[src], g)
						if !ok {
							continue
						}
						edges++
						m := prog.Process(msg, g.InWeight(s))
						if received {
							acc = prog.Reduce(acc, m)
						} else {
							acc = m
							received = true
						}
					}
					newVal := prog.Apply(uint32(v), x[v], acc, received, g)
					if received {
						applies++
					}
					nextActive[v] = prog.Changed(x[v], newVal)
					if nextActive[v] {
						changed = true
					}
					next[v] = newVal
				}
				cntMu.Lock()
				edgeCnt += edges
				applyCnt += applies
				if changed {
					anyChanged = true
				}
				cntMu.Unlock()
			}(w)
		}
		wg.Wait() // the global memory barrier of BSP
		x, next = next, x
		active, nextActive = nextActive, active
		stats.EdgesTraversed += edgeCnt
		stats.VertexUpdates += applyCnt
		if !anyChanged {
			stats.Converged = true
			break
		}
	}
	if n == 0 {
		stats.Converged = true
	}
	stats.WallTime = time.Since(start)
	return &Result[V]{Values: x, Stats: stats}, nil
}
