package graphabcd

import (
	"graphabcd/internal/graph"
	"graphabcd/internal/graphmat"
)

// runGraphMatPR runs the GraphMat baseline's PageRank for the
// cross-framework throughput benchmark.
func runGraphMatPR(g *graph.Graph) (*graphmat.Result[float64], error) {
	return graphmat.Run[float64, float64](g, graphmat.PageRank{Eps: 1e-9}, graphmat.Config{Threads: 2})
}
