// Package graphabcd is a Go implementation of GraphABCD ("Scaling Out
// Graph Analytics with Asynchronous Block Coordinate Descent", Yang et
// al., ISCA 2020): an asynchronous, barrierless, lock-free graph analytics
// framework built on the Block Coordinate Descent view of iterative graph
// algorithms.
//
// The package is a thin facade over the implementation packages. A
// typical use:
//
//	g, _ := graphabcd.NewGraph(4, []graphabcd.Edge{{Src: 0, Dst: 1, Weight: 1}, ...})
//	res, _ := graphabcd.RunPageRank(g, graphabcd.DefaultConfig(256))
//	fmt.Println(res.Values[0], res.Stats.Epochs)
//
// Key knobs (Sec. III-B of the paper): Config.BlockSize trades convergence
// rate against scheduling overhead, Config.Policy selects cyclic or
// Gauss-Southwell priority block selection, and Config.Mode switches
// between the asynchronous engine and the Barrier/BSP baselines. Attach a
// Simulator to model the paper's HARPv2 CPU-FPGA platform (bus traffic,
// PE utilization, simulated makespan) alongside the real computation.
package graphabcd

import (
	"context"
	"io"

	"graphabcd/internal/accel"
	"graphabcd/internal/bcd"
	"graphabcd/internal/cluster"
	"graphabcd/internal/core"
	"graphabcd/internal/edgestore"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
	"graphabcd/internal/word"
)

// Graph is the dual CSC/CSR pull-push graph representation.
type Graph = graph.Graph

// Edge is a directed weighted input edge.
type Edge = graph.Edge

// NewGraph builds a Graph over vertices [0, n) from an edge list.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// GraphBuilder incrementally assembles a graph from concurrent producers:
// create one shard per producing goroutine, Add edges, then Build. The
// construction is the parallel counting sort described in DESIGN.md §10.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder over vertices [0, n); a negative n
// auto-sizes the graph to 1 + the maximum vertex id added.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Format identifies an on-disk graph encoding for Load and Save.
type Format = graph.Format

// Graph file formats.
const (
	// FormatAuto detects the format: by magic bytes on load, by
	// extension on save (".gabs" plain snapshot, ".gabz" compressed
	// snapshot, anything else the text edge list).
	FormatAuto = graph.FormatAuto
	// FormatText is the "src dst [weight]" edge-list text format.
	FormatText = graph.FormatText
	// FormatSnapshot is the binary snapshot of the dual CSC/CSR layout:
	// built once, reloaded in O(m) without re-sorting, and usable
	// directly as an out-of-core edge store (OpenSnapshotEdges).
	FormatSnapshot = graph.FormatSnapshot
	// FormatSnapshotCompressed is the snapshot with delta-varint
	// compressed sections; smaller, but not preadable as an edge store.
	FormatSnapshotCompressed = graph.FormatSnapshotCompressed
)

// LoadOption configures Load.
type LoadOption interface{ applyLoad(*fileOptions) }

// SaveOption configures Save.
type SaveOption interface{ applySave(*fileOptions) }

type fileOptions struct{ format Format }

// FormatOption forces a specific file format; it satisfies both
// LoadOption and SaveOption.
type FormatOption struct{ format Format }

func (o FormatOption) applyLoad(c *fileOptions) { c.format = o.format }
func (o FormatOption) applySave(c *fileOptions) { c.format = o.format }

// WithFormat overrides format auto-detection for Load or Save — e.g.
// saving a snapshot to a path without a ".gabs" extension, or refusing
// to fall back to the text parser on load.
func WithFormat(f Format) FormatOption { return FormatOption{format: f} }

// Load reads a graph from path. The format is auto-detected from the
// file's magic bytes — a binary snapshot reloads the prebuilt layout in
// O(m); anything else parses as the text edge list (chunked and parsed
// in parallel across GOMAXPROCS).
func Load(path string, opts ...LoadOption) (*Graph, error) {
	c := fileOptions{format: FormatAuto}
	for _, o := range opts {
		o.applyLoad(&c)
	}
	return graph.LoadFormat(path, c.format)
}

// Save writes g to path atomically (temporary sibling + rename). The
// format follows the extension — ".gabs" plain snapshot, ".gabz"
// compressed snapshot, anything else the text edge list — unless
// WithFormat overrides it.
func Save(path string, g *Graph, opts ...SaveOption) error {
	c := fileOptions{format: FormatAuto}
	for _, o := range opts {
		o.applySave(&c)
	}
	return graph.SaveFormat(path, g, c.format)
}

// ReadEdgeList parses a plain-text "src dst [weight]" edge list. It is
// the io.Reader form of Load on a text file; prefer Load for paths.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g in the format ReadEdgeList parses. It is the
// io.Writer form of Save with FormatText; prefer Save for paths.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Program is the GAS/BCD vertex program abstraction; implement it to run
// custom algorithms on the engine (see the bcd package for the built-ins
// and examples/custom for an external implementation).
type Program[V, M any] = bcd.Program[V, M]

// Codec describes how vertex values are stored in the engine's atomic
// word arrays; a Program supplies one for its value type.
type Codec[V any] = word.Codec[V]

// Built-in codecs for Program implementations.
type (
	// F64Codec stores one float64 per value.
	F64Codec = word.F64
	// U64Codec stores one uint64 per value.
	U64Codec = word.U64
	// Vec32Codec stores a fixed-dimension []float32 vector.
	Vec32Codec = word.Vec32
)

// Built-in algorithm programs.
type (
	// PageRank is damped PageRank (Sec. III-A2 of the paper).
	PageRank = bcd.PageRank
	// SSSP is single-source shortest path by asynchronous relaxation.
	SSSP = bcd.SSSP
	// BFS computes breadth-first levels.
	BFS = bcd.BFS
	// CC computes connected components by min-label propagation.
	CC = bcd.CC
	// LabelProp is weighted majority label propagation.
	LabelProp = bcd.LabelProp
	// CF is collaborative filtering by low-rank factorization.
	CF = bcd.CF
	// PageRankDelta is the operation-based PageRank variant; the engine
	// runs it with atomic read-modify-write edge slots (Sec. IV-A3).
	PageRankDelta = bcd.PageRankDelta
	// KCore computes coreness by the monotone h-index fixpoint.
	KCore = bcd.KCore
)

// Unreached marks vertices not reached by BFS/CC.
const Unreached = bcd.Unreached

// Mode selects the execution model.
type Mode = core.Mode

// Execution modes.
const (
	// Async is the paper's barrierless, lock-free engine.
	Async = core.Async
	// Barrier adds a memory barrier after each wave of blocks.
	Barrier = core.Barrier
	// BSP is bulk-synchronous Jacobi iteration (block size |V|).
	BSP = core.BSP
)

// Policy selects the block scheduling rule.
type Policy = sched.Policy

// Scheduling policies.
const (
	// Cyclic selects blocks in round-robin order.
	Cyclic = sched.Cyclic
	// Priority selects by Gauss-Southwell gradient mass.
	Priority = sched.Priority
	// Random selects uniformly among active blocks.
	Random = sched.Random
)

// Config parameterizes an engine run.
type Config = core.Config

// DefaultConfig returns an async cyclic configuration with the given
// block size.
func DefaultConfig(blockSize int) Config { return core.DefaultConfig(blockSize) }

// Stats summarizes a run.
type Stats = core.Stats

// Result bundles final vertex values with run statistics.
type Result[V any] = core.Result[V]

// Run executes any Program over g. Instantiate the type parameters from
// the program, e.g. Run[float64, float64](g, PageRank{}, cfg).
//
// Run and RunContext are the typed escape hatch for custom Program
// implementations; for the built-in algorithms prefer a Runtime and a
// JobSpec, which add job handles, progress events, and registry
// dispatch on top of the same engine.
func Run[V, M any](g *Graph, prog Program[V, M], cfg Config) (*Result[V], error) {
	return RunContext(context.Background(), g, prog, cfg)
}

// RunContext is Run with cancellation and deadline support: when ctx is
// cancelled the engine drains gracefully and returns the partial
// fixed-point computed so far with Stats.Converged == false. The config
// is validated (Config.Validate) before any goroutine starts.
func RunContext[V, M any](ctx context.Context, g *Graph, prog Program[V, M], cfg Config) (*Result[V], error) {
	return core.RunContext(ctx, g, prog, cfg)
}

// PPR is personalized PageRank over a seed set; construct with NewPPR.
type PPR = bcd.PPR

// NewPPR builds a personalized-PageRank program: the teleport mass is
// concentrated uniformly on seeds instead of spread over |V|. A damping
// of 0 means the 0.85 default.
func NewPPR(damping float64, seeds []uint32) (PPR, error) { return bcd.NewPPR(damping, seeds) }

// RunPageRank runs PageRank with default damping (0.85) to convergence.
//
// Deprecated: Use a Runtime with NewJobSpec("pagerank", g,
// WithConfig(cfg)); it validates once at the Runtime boundary and
// returns a Handle with progress events.
func RunPageRank(g *Graph, cfg Config) (*Result[float64], error) {
	return runFloatHelper(NewJobSpec("pagerank", g, WithConfig(cfg)))
}

// RunSSSP runs single-source shortest path from source. Unreachable
// vertices hold +Inf.
//
// Deprecated: Use a Runtime with NewJobSpec("sssp", g,
// WithSource(source), WithConfig(cfg)).
func RunSSSP(g *Graph, source uint32, cfg Config) (*Result[float64], error) {
	return runFloatHelper(NewJobSpec("sssp", g, WithSource(source), WithConfig(cfg)))
}

// RunPPR runs personalized PageRank from the seed set with default
// damping (0.85).
//
// Deprecated: Use a Runtime with NewJobSpec("ppr", g,
// WithSeeds(seeds...), WithConfig(cfg)).
func RunPPR(g *Graph, seeds []uint32, cfg Config) (*Result[float64], error) {
	return runFloatHelper(NewJobSpec("ppr", g, WithSeeds(seeds...), WithConfig(cfg)))
}

// RunBFS computes BFS levels from source (Unreached if unreachable).
//
// Deprecated: Use a Runtime with NewJobSpec("bfs", g,
// WithSource(source), WithConfig(cfg)).
func RunBFS(g *Graph, source uint32, cfg Config) (*Result[uint64], error) {
	return runUintHelper(NewJobSpec("bfs", g, WithSource(source), WithConfig(cfg)))
}

// RunCC computes connected components (directed min-label propagation;
// symmetrize the graph for undirected components).
//
// Deprecated: Use a Runtime with NewJobSpec("cc", g, WithConfig(cfg)).
func RunCC(g *Graph, cfg Config) (*Result[uint64], error) {
	return runUintHelper(NewJobSpec("cc", g, WithConfig(cfg)))
}

// RunLabelProp runs majority label propagation. Set cfg.MaxEpochs: label
// propagation may oscillate under synchronous execution.
//
// Deprecated: Use a Runtime with NewJobSpec("labelprop", g,
// WithConfig(cfg)).
func RunLabelProp(g *Graph, cfg Config) (*Result[uint64], error) {
	return runUintHelper(NewJobSpec("labelprop", g, WithConfig(cfg)))
}

// RunCF runs collaborative filtering with the given parameters. Set
// cfg.MaxEpochs — CF iterates until its budget. Evaluate quality with
// params.RMSE(g, res.Values).
//
// Deprecated: Use a Runtime with NewJobSpec("cf", g, WithCFParams(params),
// WithConfig(cfg)); the result vectors land in JobResult.Vectors.
func RunCF(g *Graph, params CF, cfg Config) (*Result[[]float32], error) {
	res, err := runJob(context.Background(), NewJobSpec("cf", g, WithCFParams(params), WithConfig(cfg)))
	if err != nil {
		return nil, err
	}
	return &Result[[]float32]{Values: res.Vectors, Stats: res.Stats}, nil
}

// RunPageRankDelta runs the operation-based PageRank variant. It reaches
// the same fixpoint as RunPageRank but exercises the engine's atomic
// delta-accumulation path.
//
// Deprecated: Use a Runtime with NewJobSpec("pagerank-delta", g,
// WithConfig(cfg)).
func RunPageRankDelta(g *Graph, cfg Config) (*Result[float64], error) {
	return runFloatHelper(NewJobSpec("pagerank-delta", g, WithConfig(cfg)))
}

// RunKCore computes every vertex's coreness. The graph must be symmetric
// (both edge directions present).
//
// Deprecated: Use a Runtime with NewJobSpec("kcore", g, WithConfig(cfg)).
func RunKCore(g *Graph, cfg Config) (*Result[uint64], error) {
	return runUintHelper(NewJobSpec("kcore", g, WithConfig(cfg)))
}

// runFloatHelper adapts a synchronous default-runtime job to the legacy
// typed Result shape the deprecated helpers return.
func runFloatHelper(spec JobSpec) (*Result[float64], error) {
	res, err := runJob(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return &Result[float64]{Values: res.Float, Stats: res.Stats}, nil
}

func runUintHelper(spec JobSpec) (*Result[uint64], error) {
	res, err := runJob(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return &Result[uint64]{Values: res.Uint, Stats: res.Stats}, nil
}

// Simulator is the HARPv2 accelerator cost model; attach one via
// Config.Sim to collect modeled time, traffic, and utilization.
type Simulator = accel.Simulator

// SimConfig describes the modeled CPU-accelerator platform.
type SimConfig = accel.Config

// NewSimulator builds an accelerator model.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return accel.New(cfg) }

// DefaultHARPv2 is the paper's evaluation platform: 16 PEs at 200 MHz
// behind a 12.8 GB/s bus, 14 host threads.
func DefaultHARPv2() SimConfig { return accel.DefaultHARPv2() }

// Synthetic dataset generators (substitutes for the paper's Table I).

// RMATConfig parameterizes an R-MAT (Kronecker) social-graph generator.
type RMATConfig = gen.RMATConfig

// RMAT generates a power-law directed graph.
func RMAT(cfg RMATConfig) (*Graph, error) { return gen.RMAT(cfg) }

// DefaultRMAT returns Graph500-style R-MAT parameters.
func DefaultRMAT(scale, edgeFactor int, seed uint64) RMATConfig {
	return gen.DefaultRMAT(scale, edgeFactor, seed)
}

// RatingConfig parameterizes the bipartite rating-graph generator.
type RatingConfig = gen.RatingConfig

// RatingGraph is a generated bipartite user-item graph for CF.
type RatingGraph = gen.RatingGraph

// Rating generates a planted-low-rank bipartite rating graph.
func Rating(cfg RatingConfig) (*RatingGraph, error) { return gen.Rating(cfg) }

// DefaultRating returns MovieLens-like rating-generator parameters.
func DefaultRating(users, items, ratings int, seed uint64) RatingConfig {
	return gen.DefaultRating(users, items, ratings, seed)
}

// Uniform generates an Erdős–Rényi G(n, m) graph.
func Uniform(n, m, maxWeight int, seed uint64) (*Graph, error) {
	return gen.Uniform(n, m, maxWeight, seed)
}

// Grid generates a rows x cols bidirectional mesh.
func Grid(rows, cols, maxWeight int, seed uint64) (*Graph, error) {
	return gen.Grid(rows, cols, maxWeight, seed)
}

// Distributed execution: the scale-out deployment the paper's asynchronous
// design targets (Sec. IV-A3), with each node running its own engine over
// a partition of the blocks and state-based updates flowing over message
// channels with bounded delay.

// ClusterConfig parameterizes a distributed run.
type ClusterConfig = cluster.Config

// ClusterStats summarizes a distributed run.
type ClusterStats = cluster.Stats

// ClusterResult bundles final values with distributed-run statistics.
type ClusterResult[V any] = cluster.Result[V]

// RunDistributed executes any Program across a multi-node cluster. Like
// Run/RunContext it is the typed escape hatch for custom programs; the
// built-in algorithms run distributed through a Runtime JobSpec with
// WithClusterConfig, which validates the cluster config at the Runtime
// boundary before any sharding happens.
func RunDistributed[V, M any](g *Graph, prog Program[V, M], cfg ClusterConfig) (*ClusterResult[V], error) {
	return cluster.Run(context.Background(), g, prog, cfg)
}

// RunDistributedContext is RunDistributed under a context: cancellation
// or deadline expiry stops the cluster gracefully and returns the
// partial fixed-point computed so far with Stats.Converged == false.
func RunDistributedContext[V, M any](ctx context.Context, g *Graph, prog Program[V, M], cfg ClusterConfig) (*ClusterResult[V], error) {
	return cluster.Run(ctx, g, prog, cfg)
}

// RunDistributedPageRank runs PageRank across cfg.Nodes nodes.
//
// Deprecated: Use a Runtime with NewJobSpec("pagerank", g,
// WithClusterConfig(cfg)); the distributed statistics land in
// JobResult.Cluster.
func RunDistributedPageRank(g *Graph, cfg ClusterConfig) (*ClusterResult[float64], error) {
	return runDistFloatHelper(clusterSpec("pagerank", g, cfg))
}

// RunDistributedSSSP runs SSSP across cfg.Nodes nodes.
//
// Deprecated: Use a Runtime with NewJobSpec("sssp", g,
// WithSource(source), WithClusterConfig(cfg)).
func RunDistributedSSSP(g *Graph, source uint32, cfg ClusterConfig) (*ClusterResult[float64], error) {
	return runDistFloatHelper(clusterSpec("sssp", g, cfg, WithSource(source)))
}

// runDistFloatHelper adapts a synchronous default-runtime distributed
// job to the legacy typed ClusterResult shape.
func runDistFloatHelper(spec JobSpec) (*ClusterResult[float64], error) {
	res, err := runJob(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return &ClusterResult[float64]{Values: res.Float, Stats: *res.Cluster}, nil
}

// Edge storage backends (out-of-core and compressed execution).

// EdgeSource abstracts where the static edge structure streams from
// during GATHER; set Config.Edges to run out-of-core or compressed.
type EdgeSource = edgestore.Source

// InMemoryEdges is the default zero-copy source over the graph's arrays.
func InMemoryEdges(g *Graph) EdgeSource { return edgestore.InMemory(g) }

// OpenSnapshotEdges opens a plain snapshot saved with Save (or
// WithFormat(FormatSnapshot)) as an out-of-core edge source for g: the
// one file both reloads the graph and streams its edge blocks, replacing
// the separate WriteEdgeFile spill.
func OpenSnapshotEdges(g *Graph, path string) (EdgeSource, error) {
	return edgestore.OpenSnapshot(g, path)
}

// WriteEdgeFile spills g's static edge structure to a raw binary file.
//
// Kept as a thin wrapper for existing callers; new code should Save a
// FormatSnapshot file, which OpenSnapshotEdges can stream from and Load
// can reload without rebuilding.
func WriteEdgeFile(g *Graph, path string) error { return edgestore.WriteFile(g, path) }

// OpenEdgeFile opens a raw edge file for out-of-core execution.
//
// Kept as a thin wrapper for existing callers; see WriteEdgeFile.
func OpenEdgeFile(g *Graph, path string) (EdgeSource, error) { return edgestore.OpenFile(g, path) }

// WriteCompressedEdges writes the delta-varint compressed edge format,
// the compact representation of Sec. VI-C. Unlike snapshots this stores
// only the edge structure, not the full reloadable layout.
func WriteCompressedEdges(g *Graph, path string) error { return edgestore.WriteCompressed(g, path) }

// OpenCompressedEdges opens a compressed edge file for execution.
func OpenCompressedEdges(g *Graph, path string) (EdgeSource, error) {
	return edgestore.OpenCompressed(g, path)
}
