package graphabcd

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// TestRuntimeMatchesLegacyHelpers pins the API redesign's contract: the
// deprecated Run* wrappers and a Runtime JobSpec produce identical
// results, because both are the same registry dispatch.
func TestRuntimeMatchesLegacyHelpers(t *testing.T) {
	g := ring(t, 64)
	cfg := DefaultConfig(8)
	legacy, err := RunPageRank(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime()
	h, err := rt.Run(context.Background(), NewJobSpec("pr", g, WithConfig(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "pagerank" {
		t.Fatalf("alias not canonicalized: %q", res.Algorithm)
	}
	if len(res.Float) != len(legacy.Values) {
		t.Fatalf("value lengths differ: %d vs %d", len(res.Float), len(legacy.Values))
	}
	for v := range res.Float {
		if math.Abs(res.Float[v]-legacy.Values[v]) > 1e-9 {
			t.Fatalf("rank[%d]: runtime %g vs legacy %g", v, res.Float[v], legacy.Values[v])
		}
	}
}

func TestRuntimeUnknownAlgorithm(t *testing.T) {
	rt := NewRuntime()
	_, err := rt.Run(context.Background(), NewJobSpec("dijkstra", ring(t, 8)))
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("want ErrUnknownAlgorithm, got %v", err)
	}
	if !strings.Contains(err.Error(), "pagerank") {
		t.Fatalf("error should list known algorithms: %v", err)
	}
}

// TestRuntimeValidatesDistributedConfig is the regression test for the
// validate-at-the-boundary fix: an invalid cluster configuration must be
// rejected synchronously by Runtime.Run — before any sharding or
// goroutine starts — not deep inside the engine.
func TestRuntimeValidatesDistributedConfig(t *testing.T) {
	rt := NewRuntime()
	bad := ClusterConfig{Nodes: 2, WorkersPerNode: -1, BlockSize: 4}
	_, err := rt.Run(context.Background(), NewJobSpec("pagerank", ring(t, 16), WithClusterConfig(bad)))
	if err == nil {
		t.Fatal("invalid distributed config accepted")
	}
	if !strings.Contains(err.Error(), "WorkersPerNode") {
		t.Fatalf("want the cluster validation message, got: %v", err)
	}
	// Distributed dispatch is registry-gated too: labelprop has no
	// cluster runner and must be refused up front.
	_, err = rt.Run(context.Background(), NewJobSpec("labelprop", ring(t, 16),
		WithClusterConfig(ClusterConfig{Nodes: 2, WorkersPerNode: 1})))
	if err == nil || !strings.Contains(err.Error(), "distributed") {
		t.Fatalf("want distributed-unsupported error, got: %v", err)
	}
}

func TestRuntimeValidatesSpecParams(t *testing.T) {
	rt := NewRuntime()
	g := ring(t, 16)
	if _, err := rt.Run(context.Background(), NewJobSpec("sssp", g)); err == nil {
		t.Fatal("sssp without source accepted")
	}
	if _, err := rt.Run(context.Background(), NewJobSpec("sssp", g, WithSource(99))); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := rt.Run(context.Background(), NewJobSpec("ppr", g)); err == nil {
		t.Fatal("ppr without seeds accepted")
	}
	if _, err := rt.Run(context.Background(), NewJobSpec("pagerank", nil)); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := DefaultConfig(8)
	bad.NumPEs = -1
	if _, err := rt.Run(context.Background(), NewJobSpec("pagerank", g, WithConfig(bad))); err == nil {
		t.Fatal("invalid core config accepted")
	}
}

// TestRuntimeDistributed runs a real in-process cluster job through the
// registry and checks the distributed stats surface.
func TestRuntimeDistributed(t *testing.T) {
	g := ring(t, 128)
	rt := NewRuntime()
	h, err := rt.Run(context.Background(), NewJobSpec("cc", g,
		WithClusterConfig(ClusterConfig{Nodes: 2, WorkersPerNode: 2, BlockSize: 16})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster == nil || res.Cluster.Nodes != 2 {
		t.Fatalf("cluster stats missing or wrong: %+v", res.Cluster)
	}
	for v, l := range res.Uint {
		if l != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, l)
		}
	}
}

func TestRuntimeEventsTerminal(t *testing.T) {
	g := ring(t, 64)
	rt := NewRuntime()
	h, err := rt.Run(context.Background(), NewJobSpec("pagerank", g))
	if err != nil {
		t.Fatal(err)
	}
	sawDone := false
	for ev := range h.Events() {
		if ev.Job != h.ID() {
			t.Fatalf("event for job %q on handle %q", ev.Job, h.ID())
		}
		if ev.Type == EventDone {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("event stream closed without a terminal EventDone")
	}
	if res, err := h.Result(); err != nil || res == nil || !res.Stats.Converged {
		t.Fatalf("result after done: %v %v", res, err)
	}
}

func TestRuntimeCancel(t *testing.T) {
	g := ring(t, 256)
	cfg := DefaultConfig(8)
	stall := make(chan struct{})
	cfg.StallHook = func(string) {
		select {
		case <-stall:
		case <-time.After(2 * time.Millisecond):
		}
	}
	rt := NewRuntime()
	h, err := rt.Run(context.Background(), NewJobSpec("pagerank", g, WithConfig(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	res, err := h.Wait(context.Background())
	close(stall)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Converged {
		t.Log("run converged before the cancel landed (tiny graph); still fine")
	}
}

func TestPPRConcentratesOnSeeds(t *testing.T) {
	// Star-ish graph: ring plus extra edges into the seed so the seed's
	// neighborhood outranks the far side.
	g := ring(t, 64)
	res, err := RunPPR(g, []uint32{3}, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range res.Values {
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ppr mass sums to %g, want 1", sum)
	}
	if res.Values[3] <= res.Values[35] {
		t.Fatalf("seed rank %g not above far vertex %g", res.Values[3], res.Values[35])
	}
	// The fixpoint satisfies the personalized equation.
	prog, err := NewPPR(0, []uint32{3})
	if err != nil {
		t.Fatal(err)
	}
	if r := prog.L1Residual(g, res.Values); r > 1e-6 {
		t.Fatalf("ppr residual %g", r)
	}
}

func TestAlgorithmListing(t *testing.T) {
	specs := Algorithms()
	if len(specs) < 8 {
		t.Fatalf("registry lists %d algorithms", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Name >= specs[i].Name {
			t.Fatalf("listing not sorted: %q before %q", specs[i-1].Name, specs[i].Name)
		}
	}
	pr, err := LookupAlgorithm(" PageRank ")
	if err != nil || pr.Name != "pagerank" {
		t.Fatalf("case/space-insensitive lookup failed: %v %v", pr, err)
	}
}
