// Command abcdlint runs GraphABCD's custom static-analysis suite: the
// concurrency and hot-path invariants the Go compiler cannot check
// (atomic-word access discipline, allocation-free inner loops — enforced
// transitively through the call graph, lock hygiene, dropped errors,
// goroutine spawn and lifetime rules, loop cancellability, publication
// ordering, decode-bounded allocation). See internal/analysis for the
// rules and DESIGN.md §7 for why each exists.
//
// Usage:
//
//	abcdlint [flags] [packages]
//
// Packages default to ./... . Flags:
//
//	-rules rule1,rule2   run a subset ("-rules list" prints the suite)
//	-list                list available rules and exit
//	-format text|json|sarif
//	                     finding output format (default text)
//	-baseline file       grandfather findings recorded in file: they are
//	                     reported but do not fail the run
//	-update-baseline     rewrite the -baseline file from current findings
//	-ignored             audit every //abcdlint:ignore suppression and exit
//
// Exits 0 when no fresh finding survives suppression and the baseline,
// 1 on fresh findings, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphabcd/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run, or \"list\" (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	baselinePath := flag.String("baseline", "", "baseline file of grandfathered findings")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the -baseline file from current findings")
	ignored := flag.Bool("ignored", false, "list every //abcdlint:ignore suppression and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: abcdlint [-rules rule1,rule2] [-format text|json|sarif] [-baseline file [-update-baseline]] [-ignored] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list || *rules == "list" {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "abcdlint: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintf(os.Stderr, "abcdlint: -update-baseline requires -baseline\n")
		os.Exit(2)
	}

	analyzers := analysis.All()
	if *rules != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "abcdlint: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "abcdlint: %v\n", err)
		os.Exit(2)
	}
	res, err := analysis.RunResult(cwd, patterns, analyzers, analysis.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "abcdlint: %v\n", err)
		os.Exit(2)
	}
	rep := analysis.BuildReport(res, cwd)

	if *ignored {
		for _, s := range rep.Suppressions {
			fmt.Printf("%s:%d: [%s] %s\n", s.File, s.Line, strings.Join(s.Rules, ","), s.Reason)
		}
		fmt.Fprintf(os.Stderr, "abcdlint: %d suppression(s)\n", len(rep.Suppressions))
		return
	}

	fresh := len(rep.Findings)
	if *baselinePath != "" {
		if *updateBaseline {
			if err := analysis.BaselineFromReport(rep).Write(*baselinePath); err != nil {
				fmt.Fprintf(os.Stderr, "abcdlint: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "abcdlint: baseline %s updated with %d finding(s)\n", *baselinePath, len(rep.Findings))
			return
		}
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abcdlint: %v\n", err)
			os.Exit(2)
		}
		fresh = base.Apply(rep)
	}

	switch *format {
	case "json":
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "abcdlint: %v\n", err)
			os.Exit(2)
		}
	case "sarif":
		if err := rep.WriteSARIF(os.Stdout, analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "abcdlint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, f := range rep.Findings {
			suffix := ""
			if f.Grandfathered {
				suffix = " (baseline)"
			}
			fmt.Printf("%s:%d:%d: [%s] %s%s\n", f.File, f.Line, f.Col, f.Rule, f.Message, suffix)
		}
	}
	if fresh > 0 {
		fmt.Fprintf(os.Stderr, "abcdlint: %d fresh finding(s)\n", fresh)
		os.Exit(1)
	}
	if n := len(rep.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "abcdlint: %d grandfathered finding(s), none fresh\n", n)
	}
}
