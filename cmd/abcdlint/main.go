// Command abcdlint runs GraphABCD's custom static-analysis suite: the
// concurrency and hot-path invariants the Go compiler cannot check
// (atomic-word access discipline, allocation-free inner loops, lock
// hygiene, dropped errors, goroutine spawn rules). See internal/analysis
// for the rules and DESIGN.md ("Concurrency invariants") for why each
// exists.
//
// Usage:
//
//	abcdlint [-rules rule1,rule2] [packages]
//
// Packages default to ./... . Exits 1 when any finding survives
// suppression (`//abcdlint:ignore rule -- reason` on or above the line).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphabcd/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: abcdlint [-rules rule1,rule2] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *rules != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "abcdlint: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "abcdlint: %v\n", err)
		os.Exit(2)
	}
	diags, fset, err := analysis.Run(cwd, patterns, analyzers, analysis.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "abcdlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(analysis.FormatDiagnostic(fset, cwd, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "abcdlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
