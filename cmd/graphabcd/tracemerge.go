package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"graphabcd/internal/checkpoint"
)

// mergeTraces stitches per-node Chrome trace shards (one -trace file per
// cluster process) into a single JSON array loadable in ui.perfetto.dev.
// No event rewriting is needed: every shard already carries its node id
// as the event pid (the tracer's process_name metadata names the track),
// and the cross-node flow events share ids computed from (srcNode, seq)
// on both ends — concatenation alone makes the arrows connect.
func mergeTraces(out string, shards []string) error {
	if len(shards) == 0 {
		return errors.New("trace-merge: no shard files given (usage: -trace-merge merged.json node0.json node1.json ...)")
	}
	var events []json.RawMessage
	for _, path := range shards {
		evs, err := readTraceShard(path)
		if err != nil {
			return fmt.Errorf("trace-merge: %s: %w", path, err)
		}
		events = append(events, evs...)
	}
	// AtomicWriteFile already buffers; writes go straight to w.
	if err := checkpoint.AtomicWriteFile(out, func(w io.Writer) error {
		if _, err := io.WriteString(w, "[\n"); err != nil {
			return err
		}
		for i, ev := range events {
			if i > 0 {
				if _, err := io.WriteString(w, ",\n"); err != nil {
					return err
				}
			}
			if _, err := w.Write(ev); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n]\n")
		return err
	}); err != nil {
		return err
	}
	fmt.Printf("trace-merge: %d events from %d shards -> %s\n", len(events), len(shards), out)
	return nil
}

// readTraceShard decodes one shard's event array. A shard from a process
// that died mid-run may be truncated (no closing bracket); the decoded
// prefix is kept rather than losing the whole shard, with a warning.
func readTraceShard(path string) ([]json.RawMessage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	dec := json.NewDecoder(bufio.NewReaderSize(f, 1<<16))
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("not a trace event array: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, fmt.Errorf("not a trace event array (starts with %v)", tok)
	}
	var evs []json.RawMessage
	for dec.More() {
		var ev json.RawMessage
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				fmt.Fprintf(os.Stderr, "graphabcd: trace-merge: %s truncated, kept %d events\n", path, len(evs))
				return evs, nil
			}
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}
