// Command graphabcd runs one of the built-in algorithms on a graph under
// a fully configurable GraphABCD engine and reports convergence and
// performance statistics (optionally including the HARPv2 accelerator
// model's simulated metrics).
//
// Usage:
//
//	graphabcd -algo pr -dataset LJ -shrink 2 -block 512 -policy priority
//	graphabcd -algo sssp -graph weighted.el -source 0 -mode bsp
//	graphabcd -algo cf -dataset NF -shrink 3 -max-epochs 20 -sim
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"graphabcd/internal/accel"
	"graphabcd/internal/bcd"
	"graphabcd/internal/core"
	"graphabcd/internal/edgestore"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
	"graphabcd/internal/sched"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphabcd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo      = flag.String("algo", "pr", "algorithm: pr | sssp | bfs | cc | lp | cf")
		graphFile = flag.String("graph", "", "edge-list file (alternative to -dataset)")
		dataset   = flag.String("dataset", "", "Table-I analog name (WT PS LJ TW SAC MOL NF)")
		shrink    = flag.Int("shrink", 2, "dataset scale-down exponent")
		source    = flag.Uint("source", 0, "source vertex for sssp/bfs (default: max out-degree)")
		srcSet    = false

		block     = flag.Int("block", 0, "block size (0 = |V|/256 heuristic)")
		mode      = flag.String("mode", "async", "engine mode: async | barrier | bsp")
		policy    = flag.String("policy", "cyclic", "block selection: cyclic | priority | random")
		pes       = flag.Int("pes", 4, "gather-apply workers (accelerator PEs)")
		scatter   = flag.Int("scatter", 2, "scatter workers (CPU threads)")
		hybrid    = flag.Bool("hybrid", false, "enable hybrid execution")
		eps       = flag.Float64("eps", 1e-9, "activation threshold")
		maxEpochs = flag.Float64("max-epochs", 0, "epoch budget (0 = run to convergence)")
		useSim    = flag.Bool("sim", false, "attach the HARPv2 accelerator model")
		store     = flag.String("edgestore", "memory", "edge storage backend: memory | file | compressed (file/compressed spill to a temp file and stream out-of-core)")
		top       = flag.Int("top", 5, "print the top-K vertices by value")
		rank      = flag.Int("rank", 8, "cf: factor rank")
	)
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "source" {
			srcSet = true
		}
	})
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "source" {
			srcSet = true
		}
	})

	g, err := loadGraph(*graphFile, *dataset, *shrink, *algo)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s\n", g)

	edges, cleanup, err := openEdgeStore(g, *store)
	if err != nil {
		return err
	}
	defer cleanup()

	cfg := core.Config{
		BlockSize:  *block,
		NumPEs:     *pes,
		NumScatter: *scatter,
		Hybrid:     *hybrid,
		Epsilon:    *eps,
		MaxEpochs:  *maxEpochs,
		Seed:       1,
		Edges:      edges,
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = max(16, g.NumVertices()/256)
	}
	switch *mode {
	case "async":
		cfg.Mode = core.Async
	case "barrier":
		cfg.Mode = core.Barrier
	case "bsp":
		cfg.Mode = core.BSP
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	switch *policy {
	case "cyclic":
		cfg.Policy = sched.Cyclic
	case "priority":
		cfg.Policy = sched.Priority
	case "random":
		cfg.Policy = sched.Random
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	var sim *accel.Simulator
	if *useSim {
		sc := accel.DefaultHARPv2()
		if *pes > sc.NumPEs {
			sc.NumPEs = *pes
		}
		if *scatter > sc.CPUThreads {
			sc.CPUThreads = *scatter
		}
		if sim, err = accel.New(sc); err != nil {
			return err
		}
		cfg.Sim = sim
	}

	src := uint32(*source)
	if !srcSet {
		src = maxOutDegreeVertex(g)
	}

	var stats core.Stats
	switch *algo {
	case "pr":
		res, err := core.Run[float64, float64](g, bcd.PageRank{}, cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		printTopFloat(res.Values, *top, "rank")
	case "sssp":
		res, err := core.Run[float64, float64](g, bcd.SSSP{Source: src}, cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		fmt.Printf("source: %d\n", src)
		printTopFloat(res.Values, *top, "dist")
	case "bfs":
		res, err := core.Run[uint64, uint64](g, bcd.BFS{Source: src}, cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		fmt.Printf("source: %d, reached: %d\n", src, countReached(res.Values))
	case "cc":
		res, err := core.Run[uint64, uint64](g, bcd.CC{}, cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		fmt.Printf("components: %d\n", countComponents(res.Values))
	case "lp":
		if cfg.MaxEpochs == 0 {
			cfg.MaxEpochs = 50
		}
		res, err := core.Run[uint64, bcd.LPAccum](g, bcd.LabelProp{}, cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		fmt.Printf("communities: %d\n", countComponents(res.Values))
	case "cf":
		if cfg.MaxEpochs == 0 {
			cfg.MaxEpochs = 20
		}
		params := bcd.CF{Rank: *rank, LearnRate: 0.3, Lambda: 0.01, Seed: 7}
		res, err := core.Run[[]float32, []float64](g, params, cfg)
		if err != nil {
			return err
		}
		stats = res.Stats
		fmt.Printf("rmse: %.4f\n", params.RMSE(g, res.Values))
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	fmt.Printf("converged: %v\nepochs: %.2f\nblock updates: %d\nedges traversed: %d\nwall time: %v\nthroughput: %.1f MTEPS\n",
		stats.Converged, stats.Epochs, stats.BlockUpdates, stats.EdgesTraversed, stats.WallTime, stats.MTEPS())
	if sim != nil {
		fmt.Printf("sim time: %.3f ms\nbus util: %.1f%%\nPE util: %.1f%%\nbus bytes: %d\n",
			stats.SimTimeNs/1e6, 100*sim.BusUtilization(), 100*sim.PEUtilization(), sim.BusBytes())
	}
	return nil
}

// openEdgeStore prepares the requested edge storage backend, spilling the
// graph to a temporary file for the out-of-core modes.
func openEdgeStore(g *graph.Graph, kind string) (edgestore.Source, func(), error) {
	nop := func() {}
	switch kind {
	case "memory", "":
		return nil, nop, nil // engine default
	case "file", "compressed":
		dir, err := os.MkdirTemp("", "graphabcd-edges")
		if err != nil {
			return nil, nop, err
		}
		cleanup := func() { _ = os.RemoveAll(dir) } // best-effort temp cleanup
		path := filepath.Join(dir, "edges")
		var src edgestore.Source
		if kind == "file" {
			if err = edgestore.WriteFile(g, path); err == nil {
				src, err = edgestore.OpenFile(g, path)
			}
		} else {
			if err = edgestore.WriteCompressed(g, path); err == nil {
				src, err = edgestore.OpenCompressed(g, path)
			}
		}
		if err != nil {
			cleanup()
			return nil, nop, err
		}
		fmt.Printf("edge store: %s, %d bytes on disk\n", kind, src.Bytes())
		return src, func() { _ = src.Close(); cleanup() }, nil
	}
	return nil, nop, fmt.Errorf("unknown edgestore %q", kind)
}

func loadGraph(file, dataset string, shrink int, algo string) (*graph.Graph, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	case dataset != "":
		d, err := gen.Lookup(dataset)
		if err != nil {
			return nil, err
		}
		if d.Kind == gen.RatingKind {
			rg, err := d.BuildRating(shrink)
			if err != nil {
				return nil, err
			}
			return rg.Graph, nil
		}
		return d.BuildSocial(shrink, algo == "sssp")
	}
	return nil, fmt.Errorf("provide -graph FILE or -dataset NAME")
}

func maxOutDegreeVertex(g *graph.Graph) uint32 {
	best, deg := uint32(0), int32(-1)
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(uint32(v)); d > deg {
			best, deg = uint32(v), d
		}
	}
	return best
}

func printTopFloat(vals []float64, k int, label string) {
	type vv struct {
		v uint32
		x float64
	}
	all := make([]vv, 0, len(vals))
	for v, x := range vals {
		all = append(all, vv{uint32(v), x})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].x > all[b].x })
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		fmt.Printf("top %s %d: vertex %d = %g\n", label, i+1, all[i].v, all[i].x)
	}
}

func countReached(levels []uint64) int {
	n := 0
	for _, l := range levels {
		if l != bcd.Unreached {
			n++
		}
	}
	return n
}

func countComponents(labels []uint64) int {
	seen := map[uint64]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
