// Command graphabcd runs one of the built-in algorithms on a graph under
// a fully configurable GraphABCD engine and reports convergence and
// performance statistics (optionally including the HARPv2 accelerator
// model's simulated metrics).
//
// Usage:
//
//	graphabcd -algo pr -dataset LJ -shrink 2 -block 512 -policy priority
//	graphabcd -algo sssp -graph weighted.el -source 0 -mode bsp
//	graphabcd -algo cf -dataset NF -shrink 3 -max-epochs 20 -sim
//
// -graph accepts both the text edge list and the binary snapshot formats
// (auto-detected); -save-graph writes the loaded graph back out, so a
// text dataset is converted to a fast-loading snapshot with:
//
//	graphabcd -algo pr -graph big.el -save-graph big.gabs
//
// Passing -nodes N (N > 1) runs pr/sssp/bfs/cc on the distributed cluster
// engine instead, optionally under injected transport faults:
//
//	graphabcd -algo pr -dataset LJ -nodes 4 -chaos-drop 0.2 -chaos-dup 0.1
//	graphabcd -algo cc -dataset WT -nodes 3 -fail-node 1 -timeout 30s
//
// -listen/-join scale the same engine out across processes over real TCP
// sockets: the coordinator loads the graph and serves each joiner only
// its own partition's snapshot sections, every process hosts one node,
// and the coordinator collects the converged values:
//
//	graphabcd -algo cc -dataset WT -nodes 3 -listen 127.0.0.1:7001   # coordinator
//	graphabcd -join 127.0.0.1:7001                                   # joiner ×2
//
// -ckpt-dir makes long runs crash-safe: the engine (or, under -listen,
// the whole cluster) periodically writes committed checkpoint epochs
// there, and -resume restarts from the last committed epoch instead of
// from scratch. -record-schedule captures an async run's block schedule
// for -replay-schedule to re-execute deterministically:
//
//	graphabcd -algo pr -dataset LJ -ckpt-dir /ckpt -ckpt-interval 30s
//	graphabcd -algo pr -dataset LJ -ckpt-dir /ckpt -resume latest
//	graphabcd -algo pr -dataset LJ -record-schedule run.gabr
//	graphabcd -algo pr -dataset LJ -replay-schedule run.gabr
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"graphabcd"
	"graphabcd/internal/accel"
	"graphabcd/internal/bcd"
	"graphabcd/internal/chaos"
	"graphabcd/internal/checkpoint"
	"graphabcd/internal/cluster"
	"graphabcd/internal/cluster/tcp"
	"graphabcd/internal/core"
	"graphabcd/internal/edgestore"
	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
	"graphabcd/internal/obslog"
	"graphabcd/internal/sched"
	"graphabcd/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphabcd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo      = flag.String("algo", "pr", "algorithm: pr | ppr | prdelta | sssp | bfs | cc | lp | kcore | cf")
		seeds     = flag.String("seeds", "", "ppr: comma-separated personalization seed vertices")
		graphFile = flag.String("graph", "", "graph file, text edge list or binary snapshot (alternative to -dataset)")
		saveGraph = flag.String("save-graph", "", "write the loaded graph to this path before running (.gabs snapshot, .gabz compressed snapshot, else text)")
		dataset   = flag.String("dataset", "", "Table-I analog name (WT PS LJ TW SAC MOL NF)")
		shrink    = flag.Int("shrink", 2, "dataset scale-down exponent")
		source    = flag.Uint("source", 0, "source vertex for sssp/bfs (default: max out-degree)")
		srcSet    = false

		block     = flag.Int("block", 0, "block size (0 = |V|/256 heuristic)")
		mode      = flag.String("mode", "async", "engine mode: async | barrier | bsp")
		policy    = flag.String("policy", "cyclic", "block selection: cyclic | priority | random")
		pes       = flag.Int("pes", 4, "gather-apply workers (accelerator PEs)")
		scatter   = flag.Int("scatter", 2, "scatter workers (CPU threads)")
		hybrid    = flag.Bool("hybrid", false, "enable hybrid execution")
		eps       = flag.Float64("eps", 1e-9, "activation threshold")
		maxEpochs = flag.Float64("max-epochs", 0, "epoch budget (0 = run to convergence)")
		useSim    = flag.Bool("sim", false, "attach the HARPv2 accelerator model")
		store     = flag.String("edgestore", "memory", "edge storage backend: memory | file | compressed | snapshot (non-memory backends spill to a temp file and stream out-of-core)")
		top       = flag.Int("top", 5, "print the top-K vertices by value")
		rank      = flag.Int("rank", 8, "cf: factor rank")

		timeout    = flag.Duration("timeout", 0, "cancel the run after this duration and report the partial result (0 = none)")
		nodes      = flag.Int("nodes", 1, "cluster nodes; >1 runs pr/sssp/bfs/cc on the distributed engine")
		wpn        = flag.Int("workers-per-node", 2, "distributed: workers per node")
		batch      = flag.Int("batch", 64, "distributed: remote updates per message batch")
		chaosDrop  = flag.Float64("chaos-drop", 0, "distributed: message drop probability")
		chaosDup   = flag.Float64("chaos-dup", 0, "distributed: message duplication probability")
		chaosDelay = flag.Duration("chaos-delay", 0, "distributed: max per-message delivery jitter (reorders messages)")
		chaosSeed  = flag.Uint64("chaos-seed", 1, "distributed: fault-injection PRNG seed")
		failNode   = flag.Int("fail-node", -1, "distributed: kill this node mid-run (-1 = none)")
		failAfter  = flag.Int64("fail-after", 200, "distributed: batches carried before -fail-node is killed")

		listenAddr = flag.String("listen", "", "run as the TCP cluster coordinator on this address; waits for -nodes minus one joiners")
		joinAddr   = flag.String("join", "", "join a TCP cluster coordinator at this address (all other run flags come from it)")
		valuesOut  = flag.String("values-out", "", "coordinator: write the converged per-vertex values to this file, one per line")

		ckptDir      = flag.String("ckpt-dir", "", "write committed checkpoint epochs to this directory (single-node and -listen runs)")
		ckptInterval = flag.Duration("ckpt-interval", 5*time.Second, "checkpoint period (needs -ckpt-dir)")
		runID        = flag.String("run-id", "", "checkpoint run id (default: derived from the algorithm and graph)")
		resume       = flag.String("resume", "", "resume from a committed checkpoint: a run id, or 'latest' (needs -ckpt-dir)")
		recordPath   = flag.String("record-schedule", "", "record the async block schedule to this file for -replay-schedule")
		replayPath   = flag.String("replay-schedule", "", "deterministically re-execute a schedule recorded by -record-schedule")

		useTel      = flag.Bool("telemetry", false, "enable stage histograms and the post-run telemetry report")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON of sampled block lifecycles to this file")
		traceSample = flag.Int("trace-sample", 16, "trace every Nth block id (1 = every block)")
		traceMerge  = flag.String("trace-merge", "", "merge the per-node trace shards given as arguments into this file, then exit")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, /readyz, expvar, and pprof on this address (e.g. :6060); works on joiners too")
		progress    = flag.Bool("progress", false, "print a 1 Hz status line to stderr while the run executes")
		logLevel    = flag.String("log-level", "", "enable structured logging to stderr at this level: debug | info | warn | error")
		logFormat   = flag.String("log-format", "text", "structured log encoding: text | json")
	)
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "source" {
			srcSet = true
		}
	})
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "source" {
			srcSet = true
		}
	})

	if *traceMerge != "" {
		// A pure post-processing mode: stitch per-node trace shards and
		// exit without touching a graph.
		return mergeTraces(*traceMerge, flag.Args())
	}

	if *logLevel != "" {
		lvl, ok := obslog.ParseLevel(*logLevel)
		if !ok {
			return fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", *logLevel)
		}
		// Per-process identity attrs; the per-event node/runID fields in
		// the log sites refine these once an assignment is known.
		var attrs []slog.Attr
		if *runID != "" {
			attrs = append(attrs, slog.String("runID", *runID))
		}
		switch {
		case *joinAddr != "":
			attrs = append(attrs, slog.String("role", "joiner"), slog.String("addr", *joinAddr))
		case *listenAddr != "":
			attrs = append(attrs, slog.String("role", "coordinator"), slog.String("addr", *listenAddr), slog.Int("node", 0))
		}
		if !obslog.Init(lvl, *logFormat, os.Stderr, attrs...) {
			return fmt.Errorf("unknown -log-format %q (want text|json)", *logFormat)
		}
	}

	if *joinAddr != "" {
		// A joiner is configured entirely by its coordinator: no graph,
		// no dataset, no engine flags — but it serves its own metrics
		// endpoint and ships telemetry deltas when the coordinator asks.
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		jOpts := telemetryOpts{
			enabled:     *useTel,
			tracePath:   *tracePath,
			traceSample: *traceSample,
			metricsAddr: *metricsAddr,
		}
		var jses *telemetrySession
		topts := tcp.Options{}
		if jOpts.active() {
			var err error
			if jses, err = startTelemetry(jOpts); err != nil {
				return err
			}
			topts.Telemetry = jses.reg
			topts.Health = jses.health
		}
		fmt.Printf("joining coordinator at %s\n", *joinAddr)
		err := tcp.Join(ctx, *joinAddr, topts)
		if jses != nil {
			jses.finish()
		}
		if err != nil {
			return err
		}
		fmt.Println("join run complete")
		return nil
	}

	g, err := loadGraph(*graphFile, *dataset, *shrink, *algo)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s\n", g)
	if *saveGraph != "" {
		if err := graph.Save(*saveGraph, g); err != nil {
			return err
		}
		fmt.Printf("saved: %s (%s)\n", *saveGraph, graph.DetectSaveFormat(*saveGraph, graph.FormatAuto))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	blockSize := *block
	if blockSize == 0 {
		blockSize = max(16, g.NumVertices()/256)
	}

	src := uint32(*source)
	if !srcSet {
		src = maxOutDegreeVertex(g)
	}

	tOpts := telemetryOpts{
		enabled:     *useTel,
		tracePath:   *tracePath,
		traceSample: *traceSample,
		metricsAddr: *metricsAddr,
		progress:    *progress,
		cluster:     *listenAddr != "",
	}
	var tses *telemetrySession
	var telReg *telemetry.Registry
	if tOpts.active() {
		if tses, err = startTelemetry(tOpts); err != nil {
			return err
		}
		telReg = tses.reg
	}

	if *listenAddr != "" {
		var clus *telemetry.ClusterStats
		var health *telemetry.Health
		if tses != nil {
			clus, health = tses.cluster, tses.health
		}
		err := runListen(ctx, g, *listenAddr, *valuesOut, distOpts{
			tel:          telReg,
			cluster:      clus,
			health:       health,
			algo:         *algo,
			src:          src,
			top:          *top,
			nodes:        *nodes,
			blockSize:    blockSize,
			wpn:          *wpn,
			batch:        *batch,
			eps:          *eps,
			ckptDir:      *ckptDir,
			ckptInterval: *ckptInterval,
			runID:        *runID,
			resume:       *resume,
		})
		if tses != nil {
			tses.finish()
		}
		return err
	}

	// The in-process paths have no dist runtime driving readiness; the
	// run itself is the readiness signal (-listen/-join flip it from
	// inside the cluster runtime instead).
	if tses != nil {
		tses.health.SetReady(true, "running")
	}

	if *nodes > 1 {
		if *ckptDir != "" || *resume != "" {
			return fmt.Errorf("the in-process cluster engine does not checkpoint; use -listen for a crash-safe distributed run")
		}
		err := runDistributed(ctx, g, distOpts{
			tel:       telReg,
			algo:      *algo,
			src:       src,
			top:       *top,
			nodes:     *nodes,
			blockSize: blockSize,
			wpn:       *wpn,
			batch:     *batch,
			eps:       *eps,
			maxEpochs: *maxEpochs,
			drop:      *chaosDrop,
			dup:       *chaosDup,
			delay:     *chaosDelay,
			seed:      *chaosSeed,
			failNode:  *failNode,
			failAfter: *failAfter,
		})
		if tses != nil {
			tses.finish()
		}
		return err
	}

	edges, cleanup, err := openEdgeStore(g, *store)
	if err != nil {
		return err
	}
	defer cleanup()

	cfg := core.Config{
		BlockSize:  blockSize,
		NumPEs:     *pes,
		NumScatter: *scatter,
		Hybrid:     *hybrid,
		Epsilon:    *eps,
		MaxEpochs:  *maxEpochs,
		Seed:       1,
		Edges:      edges,
		Telemetry:  telReg,
	}
	switch *mode {
	case "async":
		cfg.Mode = core.Async
	case "barrier":
		cfg.Mode = core.Barrier
	case "bsp":
		cfg.Mode = core.BSP
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	switch *policy {
	case "cyclic":
		cfg.Policy = sched.Cyclic
	case "priority":
		cfg.Policy = sched.Priority
	case "random":
		cfg.Policy = sched.Random
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	cfg.Checkpoint = core.Checkpoint{Dir: *ckptDir, RunID: *runID, Resume: *resume}
	if *ckptDir != "" {
		cfg.Checkpoint.Interval = *ckptInterval
	}
	var schedule []uint32
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		nb := (g.NumVertices() + blockSize - 1) / blockSize
		schedule, err = checkpoint.ReadSchedule(f, nb)
		_ = f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("replaying %d scheduled blocks from %s\n", len(schedule), *replayPath)
	}
	var recFile *os.File
	if *recordPath != "" && schedule == nil {
		if recFile, err = os.Create(*recordPath); err != nil {
			return err
		}
		defer func() { _ = recFile.Close() }() // double close on success is harmless
		cfg.RecordSchedule = recFile
	}
	var sim *accel.Simulator
	if *useSim {
		sc := accel.DefaultHARPv2()
		if *pes > sc.NumPEs {
			sc.NumPEs = *pes
		}
		if *scatter > sc.CPUThreads {
			sc.CPUThreads = *scatter
		}
		if sim, err = accel.New(sc); err != nil {
			return err
		}
		cfg.Sim = sim
	}

	// One registry-driven dispatch replaces the per-algorithm switch: the
	// CLI builds the same JobSpec the HTTP serving layer does, and the
	// Runtime validates it (engine config included) before starting.
	alg, err := graphabcd.LookupAlgorithm(*algo)
	if err != nil {
		return err
	}
	if cfg.MaxEpochs == 0 && alg.DefaultMaxEpochs > 0 {
		cfg.MaxEpochs = alg.DefaultMaxEpochs // non-convergent workloads need a bound
	}
	jopts := []graphabcd.JobOption{graphabcd.WithConfig(cfg)}
	if alg.NeedsSource {
		jopts = append(jopts, graphabcd.WithSource(src))
	}
	if alg.NeedsSeeds {
		pprSeeds, err := parseSeeds(*seeds)
		if err != nil {
			return err
		}
		jopts = append(jopts, graphabcd.WithSeeds(pprSeeds...))
	}
	var cfParams bcd.CF
	if alg.Name == "cf" {
		cfParams = bcd.CF{Rank: *rank, LearnRate: 0.3, Lambda: 0.01, Seed: 7}
		jopts = append(jopts, graphabcd.WithCFParams(cfParams))
	}
	if schedule != nil {
		jopts = append(jopts, graphabcd.WithSchedule(schedule))
	}
	h, err := graphabcd.NewRuntime().Run(ctx, graphabcd.NewJobSpec(alg.Name, g, jopts...))
	if err != nil {
		return err
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		return err
	}
	// The residual trace is the replay's fingerprint: two replays of the
	// same schedule print bit-identical lines.
	for i, r := range res.Residuals {
		if i >= 8 && i < len(res.Residuals)-1 {
			if i == 8 {
				fmt.Printf("residual ...\n")
			}
			continue
		}
		fmt.Printf("residual after epoch %d: %.17g\n", i+1, r)
	}
	stats := res.Stats
	switch alg.Name {
	case "pagerank", "pagerank-delta", "ppr":
		printTopFloat(res.Float, *top, "rank")
	case "sssp":
		fmt.Printf("source: %d\n", src)
		printTopFloat(res.Float, *top, "dist")
	case "bfs":
		fmt.Printf("source: %d, reached: %d\n", src, countReached(res.Uint))
	case "cc":
		fmt.Printf("components: %d\n", countComponents(res.Uint))
	case "labelprop":
		fmt.Printf("communities: %d\n", countComponents(res.Uint))
	case "kcore":
		var maxCore uint64
		for _, c := range res.Uint {
			maxCore = max(maxCore, c)
		}
		fmt.Printf("max core: %d\n", maxCore)
	case "cf":
		fmt.Printf("rmse: %.4f\n", cfParams.RMSE(g, res.Vectors))
	}

	fmt.Printf("converged: %v\nepochs: %.2f\nblock updates: %d\nedges traversed: %d\nwall time: %v\nthroughput: %.1f MTEPS\n",
		stats.Converged, stats.Epochs, stats.BlockUpdates, stats.EdgesTraversed, stats.WallTime, stats.MTEPS())
	if stats.StallWindows > 0 {
		fmt.Printf("stall windows: %d\n", stats.StallWindows)
	}
	if sim != nil {
		fmt.Printf("sim time: %.3f ms\nbus util: %.1f%%\nPE util: %.1f%%\nbus bytes: %d\n",
			stats.SimTimeNs/1e6, 100*sim.BusUtilization(), 100*sim.PEUtilization(), sim.BusBytes())
	}
	if recFile != nil {
		// The engine already flushed the recorder; the file close is the
		// last durability step and its error must not pass silently.
		if err := recFile.Close(); err != nil {
			return err
		}
		fmt.Printf("schedule: %s\n", *recordPath)
	}
	if tses != nil {
		tses.finish()
	}
	return nil
}

// parseSeeds splits a comma-separated vertex id list for -seeds.
func parseSeeds(s string) ([]uint32, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("ppr needs -seeds (comma-separated vertex ids)")
	}
	parts := strings.Split(s, ",")
	out := make([]uint32, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad seed vertex %q: %w", p, err)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

// distOpts carries the distributed-run flag values.
type distOpts struct {
	tel          *telemetry.Registry
	cluster      *telemetry.ClusterStats // coordinator: merged fStats sink
	health       *telemetry.Health       // /readyz state, driven by the dist runtime
	algo         string
	src          uint32
	top          int
	nodes        int
	blockSize    int
	wpn          int
	batch        int
	eps          float64
	maxEpochs    float64
	drop, dup    float64
	delay        time.Duration
	seed         uint64
	failNode     int
	failAfter    int64
	ckptDir      string
	ckptInterval time.Duration
	runID        string
	resume       string
}

// runListen runs the coordinator side of a TCP cluster: the loaded graph
// is staged as a plain snapshot (the section server needs positioned
// reads), joiners are awaited on the control listener, and the collected
// values are reported like a local run.
func runListen(ctx context.Context, g *graph.Graph, addr, valuesOut string, o distOpts) error {
	dir, err := os.MkdirTemp("", "graphabcd-dist")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	snapPath := filepath.Join(dir, "graph.gabs")
	if err := graph.SaveFormat(snapPath, g, graph.FormatSnapshot); err != nil {
		return err
	}
	ctrl, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer func() { _ = ctrl.Close() }()
	fmt.Printf("coordinating %d nodes on %s (%d joiners expected)\n", o.nodes, ctrl.Addr(), o.nodes-1)
	res, err := tcp.Serve(ctx, ctrl, snapPath, tcp.DistConfig{
		Nodes:              o.nodes,
		Algo:               o.algo,
		Source:             o.src,
		BlockSize:          o.blockSize,
		WorkersPerNode:     o.wpn,
		BatchSize:          o.batch,
		Epsilon:            o.eps,
		Telemetry:          o.tel,
		Cluster:            o.cluster,
		Health:             o.health,
		CheckpointDir:      o.ckptDir,
		CheckpointInterval: o.ckptInterval,
		RunID:              o.runID,
		Resume:             o.resume,
	})
	if err != nil {
		return err
	}
	switch {
	case res.Float != nil:
		if o.algo == "sssp" {
			fmt.Printf("source: %d\n", o.src)
		}
		printTopFloat(res.Float, o.top, map[string]string{"pr": "rank", "sssp": "dist"}[o.algo])
	case o.algo == "bfs":
		fmt.Printf("source: %d, reached: %d\n", o.src, countReached(res.Uint))
	default:
		fmt.Printf("components: %d\n", countComponents(res.Uint))
	}
	fmt.Printf("nodes: %d\nbatches sent: %d\nwall time: %v\n", o.nodes, res.BatchesSent, res.WallTime)
	if w := res.Wire; w.FramesSent > 0 || w.FramesRecv > 0 {
		fmt.Printf("wire: %d B in %d frames sent, %d B in %d frames recv, %d reconnects, %d drops (%d crc), queue high water %d\n",
			w.BytesSent, w.FramesSent, w.BytesRecv, w.FramesRecv,
			w.Reconnects, w.Drops, w.CRCDrops, w.QueueHighWater)
	}
	if valuesOut != "" {
		if err := writeValues(valuesOut, res); err != nil {
			return err
		}
		fmt.Printf("values: %s\n", valuesOut)
	}
	return nil
}

// writeValues dumps the converged values one per line, floats with full
// round-trip precision so runs can be compared exactly. The write is
// crash-atomic (temp file + sync + rename): a run killed mid-write
// leaves the previous file intact, never a truncated mix.
func writeValues(path string, res *tcp.DistResult) error {
	return checkpoint.AtomicWriteFile(path, func(out io.Writer) error {
		// bufio's error is sticky: a failed write here surfaces at Flush.
		w := bufio.NewWriter(out)
		if res.Float != nil {
			for _, v := range res.Float {
				_, _ = fmt.Fprintf(w, "%.17g\n", v)
			}
		} else {
			for _, v := range res.Uint {
				_, _ = fmt.Fprintf(w, "%d\n", v)
			}
		}
		return w.Flush()
	})
}

// runDistributed executes pr/sssp/bfs/cc on the cluster engine, wiring up
// the chaos transport and the mid-run node kill when requested.
func runDistributed(ctx context.Context, g *graph.Graph, o distOpts) error {
	cfg := cluster.Config{
		Nodes:          o.nodes,
		BlockSize:      o.blockSize,
		WorkersPerNode: o.wpn,
		BatchSize:      o.batch,
		Epsilon:        o.eps,
		MaxEpochs:      o.maxEpochs,
		Telemetry:      o.tel,
	}
	if o.drop > 0 || o.dup > 0 || o.delay > 0 || o.failNode >= 0 {
		tcfg := chaos.Config{
			Seed:     o.seed,
			DropRate: o.drop,
			DupRate:  o.dup,
			MaxDelay: o.delay,
		}
		if o.failNode >= 0 {
			ctl := make(chan cluster.Control, 1)
			cfg.OnStart = func(c cluster.Control) { ctl <- c }
			tcfg.AfterBatches = o.failAfter
			tcfg.OnFault = func() {
				c := <-ctl
				if err := c.FailNode(o.failNode); err != nil {
					fmt.Fprintln(os.Stderr, "graphabcd: fail-node:", err)
				}
			}
		}
		cfg.Transport = chaos.New(tcfg)
		fmt.Printf("chaos: drop=%.2f dup=%.2f delay=%v seed=%d\n", o.drop, o.dup, o.delay, o.seed)
	}

	// Distributed dispatch rides the same registry as the single-node
	// path; the Runtime validates the cluster config before any node
	// goroutine starts.
	alg, err := graphabcd.LookupAlgorithm(o.algo)
	if err != nil {
		return err
	}
	jopts := []graphabcd.JobOption{graphabcd.WithClusterConfig(cfg)}
	if alg.NeedsSource {
		jopts = append(jopts, graphabcd.WithSource(o.src))
	}
	h, err := graphabcd.NewRuntime().Run(ctx, graphabcd.NewJobSpec(alg.Name, g, jopts...))
	if err != nil {
		return err
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		return err
	}
	stats := *res.Cluster
	switch alg.Name {
	case "pagerank":
		printTopFloat(res.Float, o.top, "rank")
	case "sssp":
		fmt.Printf("source: %d\n", o.src)
		printTopFloat(res.Float, o.top, "dist")
	case "bfs":
		fmt.Printf("source: %d, reached: %d\n", o.src, countReached(res.Uint))
	case "cc":
		fmt.Printf("components: %d\n", countComponents(res.Uint))
	}

	fmt.Printf("converged: %v\nnodes: %d\nepochs: %.2f\nblock updates: %d\nedges traversed: %d\nwall time: %v\nthroughput: %.1f MTEPS\n",
		stats.Converged, stats.Nodes, stats.Epochs, stats.BlockUpdates, stats.EdgesTraversed, stats.WallTime, stats.MTEPS())
	fmt.Printf("messages: %d in %d batches (%d local writes)\n",
		stats.MessagesSent, stats.BatchesSent, stats.LocalWrites)
	fmt.Printf("batches retried: %d, dropped: %d, duplicated: %d\nnodes failed: %d\n",
		stats.BatchesRetried, stats.BatchesDropped, stats.BatchesDuplicated, stats.NodesFailed)
	if stats.StallWindows > 0 {
		fmt.Printf("stall windows: %d\n", stats.StallWindows)
	}
	return nil
}

// openEdgeStore prepares the requested edge storage backend, spilling the
// graph to a temporary file for the out-of-core modes.
func openEdgeStore(g *graph.Graph, kind string) (edgestore.Source, func(), error) {
	nop := func() {}
	switch kind {
	case "memory", "":
		return nil, nop, nil // engine default
	case "file", "compressed", "snapshot":
		dir, err := os.MkdirTemp("", "graphabcd-edges")
		if err != nil {
			return nil, nop, err
		}
		cleanup := func() { _ = os.RemoveAll(dir) } // best-effort temp cleanup
		path := filepath.Join(dir, "edges")
		var src edgestore.Source
		switch kind {
		case "file":
			if err = edgestore.WriteFile(g, path); err == nil {
				src, err = edgestore.OpenFile(g, path)
			}
		case "compressed":
			if err = edgestore.WriteCompressed(g, path); err == nil {
				src, err = edgestore.OpenCompressed(g, path)
			}
		case "snapshot":
			if err = graph.SaveFormat(path, g, graph.FormatSnapshot); err == nil {
				src, err = edgestore.OpenSnapshot(g, path)
			}
		}
		if err != nil {
			cleanup()
			return nil, nop, err
		}
		fmt.Printf("edge store: %s, %d bytes on disk\n", kind, src.Bytes())
		return src, func() { _ = src.Close(); cleanup() }, nil
	}
	return nil, nop, fmt.Errorf("unknown edgestore %q", kind)
}

func loadGraph(file, dataset string, shrink int, algo string) (*graph.Graph, error) {
	switch {
	case file != "":
		return graph.Load(file)
	case dataset != "":
		d, err := gen.Lookup(dataset)
		if err != nil {
			return nil, err
		}
		if d.Kind == gen.RatingKind {
			rg, err := d.BuildRating(shrink)
			if err != nil {
				return nil, err
			}
			return rg.Graph, nil
		}
		return d.BuildSocial(shrink, algo == "sssp")
	}
	return nil, fmt.Errorf("provide -graph FILE or -dataset NAME")
}

func maxOutDegreeVertex(g *graph.Graph) uint32 {
	best, deg := uint32(0), int32(-1)
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(uint32(v)); d > deg {
			best, deg = uint32(v), d
		}
	}
	return best
}

func printTopFloat(vals []float64, k int, label string) {
	type vv struct {
		v uint32
		x float64
	}
	all := make([]vv, 0, len(vals))
	for v, x := range vals {
		all = append(all, vv{uint32(v), x})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].x > all[b].x })
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		fmt.Printf("top %s %d: vertex %d = %g\n", label, i+1, all[i].v, all[i].x)
	}
}

func countReached(levels []uint64) int {
	n := 0
	for _, l := range levels {
		if l != bcd.Unreached {
			n++
		}
	}
	return n
}

func countComponents(labels []uint64) int {
	seen := map[uint64]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
