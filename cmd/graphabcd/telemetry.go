package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"time"

	"graphabcd/internal/metrics"
	"graphabcd/internal/telemetry"
)

// telemetryOpts carries the observability flag values.
type telemetryOpts struct {
	enabled     bool   // -telemetry: histograms + post-run report
	tracePath   string // -trace: Chrome trace-event JSON output file
	traceSample int    // -trace-sample: trace every Nth block id
	metricsAddr string // -metrics-addr: /metrics + expvar + pprof listener
	progress    bool   // -progress: 1 Hz status line on stderr
	cluster     bool   // coordinator: aggregate and expose cluster families
}

// active reports whether any observability feature was requested.
func (o telemetryOpts) active() bool {
	return o.enabled || o.tracePath != "" || o.metricsAddr != "" || o.progress
}

// telemetrySession owns the run's registry and the resources behind it:
// the trace file, the metrics listener, the health state, the optional
// cluster aggregation sink, and the progress printer.
type telemetrySession struct {
	reg       *telemetry.Registry
	health    *telemetry.Health
	cluster   *telemetry.ClusterStats // non-nil only on a coordinator
	tracer    *telemetry.Tracer
	traceFile *os.File
	tracePath string
	listener  net.Listener
	stop      chan struct{}
	done      chan struct{}
}

// startTelemetry builds the registry and starts whatever the flags asked
// for. On error everything already started is torn down.
func startTelemetry(o telemetryOpts) (*telemetrySession, error) {
	s := &telemetrySession{health: telemetry.NewHealth("starting")}
	if o.cluster {
		s.cluster = telemetry.NewClusterStats()
	}
	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		s.traceFile = f
		s.tracePath = o.tracePath
		s.tracer = telemetry.NewTracer(f, o.traceSample)
	}
	s.reg = telemetry.New(telemetry.Options{Histograms: true, Tracer: s.tracer})

	if o.metricsAddr != "" {
		// An explicit mux, not http.DefaultServeMux: the process serves
		// exactly the endpoints it documents, and nothing an imported
		// package happened to register globally.
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.PromHandler(s.reg, s.cluster))
		mux.Handle("/healthz", telemetry.HealthzHandler())
		mux.Handle("/readyz", telemetry.ReadyzHandler(s.health))
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		publishSnapshotVar(s.reg)
		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			s.closeTrace()
			return nil, fmt.Errorf("metrics-addr: %w", err)
		}
		s.listener = ln
		fmt.Printf("metrics: http://%s/metrics (healthz, readyz, debug/vars, debug/pprof/)\n", ln.Addr())
		//abcdlint:ignore goroutine -- bounded by the listener: http.Serve returns when finish() closes ln at session shutdown
		go func() {
			_ = http.Serve(ln, mux)
		}()
	}

	if o.progress {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.progressLoop()
	}
	return s, nil
}

// publishSnapshotVar exposes the registry snapshot under /debug/vars.
// expvar.Publish panics on a duplicate name, and tests may build several
// sessions in one process, so the publication is latched once and the
// live registry swapped behind it.
var snapshotVarReg = func() *struct{ r *telemetry.Registry } {
	holder := &struct{ r *telemetry.Registry }{}
	expvar.Publish("graphabcd", expvar.Func(func() any {
		if holder.r == nil {
			return nil
		}
		return holder.r.Snapshot()
	}))
	return holder
}()

func publishSnapshotVar(r *telemetry.Registry) { snapshotVarReg.r = r }

// progressLoop prints a one-line status to stderr once per second while
// the run executes.
func (s *telemetrySession) progressLoop() {
	defer close(s.done)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			snap := s.reg.Snapshot()
			fmt.Fprintf(os.Stderr,
				"progress: t=%s epoch=%.2f residual=%.3g active=%d accelQ=%.0f cpuQ=%.0f %.1f MTEPS\n",
				metrics.FormatDuration(snap.ElapsedSec), snap.Epochs, snap.Residual,
				snap.ActiveBlocks, snap.Gauges["accel_queue_depth"], snap.Gauges["cpu_queue_depth"],
				snap.MTEPS)
		}
	}
}

// closeTrace finalizes the trace JSON and closes the file.
func (s *telemetrySession) closeTrace() {
	if s.tracer != nil {
		if err := s.tracer.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "graphabcd: trace:", err)
		}
		s.tracer = nil
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "graphabcd: trace:", err)
		}
		s.traceFile = nil
	}
}

// finish stops the live outputs, finalizes the trace, and prints the
// post-run telemetry report. Call it once, after the run returns.
func (s *telemetrySession) finish() {
	s.health.SetReady(false, "stopped")
	if s.stop != nil {
		close(s.stop)
		<-s.done
	}
	if s.listener != nil {
		_ = s.listener.Close()
	}
	dropped := int64(0)
	if s.tracer != nil {
		dropped = s.tracer.Dropped()
	}
	s.closeTrace()
	if s.tracePath != "" {
		fmt.Printf("trace: wrote %s (load in chrome://tracing or ui.perfetto.dev)", s.tracePath)
		if dropped > 0 {
			fmt.Printf(", %d events dropped", dropped)
		}
		fmt.Println()
	}
	s.printReport()
}

// printReport renders the stage-latency table, the convergence
// sparkline, and (on a coordinator) the merged per-node cluster table
// from the registry's final state.
func (s *telemetrySession) printReport() {
	snap := s.reg.Snapshot()
	if len(snap.Stages) > 0 {
		fmt.Println("stage latencies:")
		t := metrics.NewTable(os.Stdout, "  stage", "count", "mean", "p50", "p95", "p99", "max")
		names := make([]string, 0, len(snap.Stages))
		for name := range snap.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := snap.Stages[name]
			if name == telemetry.StageStaleness.Name() {
				// Staleness is in milli-epochs, not nanoseconds.
				t.Row("  "+name, st.Count,
					fmt.Sprintf("%.1fme", st.Mean), fmt.Sprintf("%dme", st.P50),
					fmt.Sprintf("%dme", st.P95), fmt.Sprintf("%dme", st.P99),
					fmt.Sprintf("%dme", st.Max))
				continue
			}
			t.Row("  "+name, st.Count,
				metrics.FormatDuration(st.Mean/1e9), metrics.FormatDuration(float64(st.P50)/1e9),
				metrics.FormatDuration(float64(st.P95)/1e9), metrics.FormatDuration(float64(st.P99)/1e9),
				metrics.FormatDuration(float64(st.Max)/1e9))
		}
		if err := t.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "graphabcd: report:", err)
		}
	}
	conv := s.reg.Convergence()
	if len(conv) > 0 {
		res := make([]float64, len(conv))
		act := make([]float64, len(conv))
		for i, c := range conv {
			res[i] = c.Residual
			act[i] = float64(c.ActiveBlocks)
		}
		fmt.Printf("convergence (%d epochs):\n", conv[len(conv)-1].Epoch)
		fmt.Printf("  residual      %s  %.3g -> %.3g\n", metrics.Sparkline(res, 48), res[0], res[len(res)-1])
		fmt.Printf("  active blocks %s  %.0f -> %.0f\n", metrics.Sparkline(act, 48), act[0], act[len(act)-1])
	}
	s.printClusterReport()
}

// printClusterReport renders the coordinator's merged per-node telemetry
// table — the cluster-wide view the fStats rounds aggregated.
func (s *telemetrySession) printClusterReport() {
	if s.cluster == nil || s.cluster.Len() == 0 {
		return
	}
	nodes := s.cluster.Nodes()
	fmt.Printf("cluster telemetry (%d nodes):\n", len(nodes))
	t := metrics.NewTable(os.Stdout,
		"  node", "vtx upd", "msgs", "batches", "retried", "ckpt ep", "ckpt B", "crc drop", "reconn", "queue hw")
	for i := range nodes {
		n := &nodes[i]
		t.Row(fmt.Sprintf("  %d", n.Node),
			n.Counters[telemetry.CtrVertexUpdates],
			n.Counters[telemetry.CtrMessagesSent],
			n.Counters[telemetry.CtrBatchesSent],
			n.Counters[telemetry.CtrBatchesRetried],
			n.Counters[telemetry.CtrCkptEpochs],
			n.Counters[telemetry.CtrCkptBytes],
			n.Wire.CRCDrops,
			n.Wire.Reconnects,
			n.Wire.QueueHighWater)
	}
	if err := t.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "graphabcd: report:", err)
	}
}
