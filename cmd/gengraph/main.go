// Command gengraph generates synthetic graphs (the Table-I dataset
// analogs, or parameterized R-MAT / uniform / grid / rating graphs) and
// writes them as text edge lists or binary snapshots.
//
// Usage:
//
//	gengraph -kind rmat -scale 14 -edgefactor 16 -o graph.el
//	gengraph -kind rmat -scale 20 -o graph.gabs     # snapshot, by extension
//	gengraph -kind dataset -name LJ -shrink 2 -format snapshot -o lj.bin
//	gengraph -kind rating -users 1000 -items 200 -ratings 50000 -o nf.el
package main

import (
	"flag"
	"fmt"
	"os"

	"graphabcd/internal/gen"
	"graphabcd/internal/graph"
)

func main() {
	var (
		kind    = flag.String("kind", "rmat", "generator: rmat | uniform | grid | rating | dataset")
		out     = flag.String("o", "", "output file (default stdout)")
		format  = flag.String("format", "auto", "output format: auto | text | snapshot | snapshot-compressed (auto: by -o extension, .gabs/.gabz are snapshots)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		maxW    = flag.Int("maxweight", 0, "integer weights in [1,maxweight]; 0 = unweighted")
		scale   = flag.Int("scale", 12, "rmat: |V| = 2^scale")
		ef      = flag.Int("edgefactor", 16, "rmat: |E| = edgefactor * |V|")
		n       = flag.Int("n", 1024, "uniform: vertex count")
		m       = flag.Int("m", 16384, "uniform: edge count")
		rows    = flag.Int("rows", 64, "grid: rows")
		cols    = flag.Int("cols", 64, "grid: cols")
		users   = flag.Int("users", 1000, "rating: user count")
		items   = flag.Int("items", 200, "rating: item count")
		ratings = flag.Int("ratings", 50000, "rating: rating count")
		name    = flag.String("name", "WT", "dataset: Table-I analog name (WT PS LJ TW SAC MOL NF)")
		shrink  = flag.Int("shrink", 0, "dataset: scale down by 2^shrink")
	)
	flag.Parse()

	g, err := build(*kind, buildParams{
		seed: *seed, maxW: *maxW, scale: *scale, ef: *ef, n: *n, m: *m,
		rows: *rows, cols: *cols, users: *users, items: *items,
		ratings: *ratings, name: *name, shrink: *shrink,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}

	var f graph.Format
	switch *format {
	case "auto":
		f = graph.FormatAuto
	case "text":
		f = graph.FormatText
	case "snapshot":
		f = graph.FormatSnapshot
	case "snapshot-compressed":
		f = graph.FormatSnapshotCompressed
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown format %q\n", *format)
		os.Exit(1)
	}

	if *out != "" {
		if err := graph.SaveFormat(*out, g, f); err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s as %s\n", g, graph.DetectSaveFormat(*out, f))
		return
	}
	if err := graph.WriteFormat(os.Stdout, g, f); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", g)
}

type buildParams struct {
	seed                  uint64
	maxW, scale, ef, n, m int
	rows, cols            int
	users, items, ratings int
	name                  string
	shrink                int
}

func build(kind string, p buildParams) (*graph.Graph, error) {
	switch kind {
	case "rmat":
		cfg := gen.DefaultRMAT(p.scale, p.ef, p.seed)
		cfg.MaxWeight = p.maxW
		return gen.RMAT(cfg)
	case "uniform":
		return gen.Uniform(p.n, p.m, p.maxW, p.seed)
	case "grid":
		return gen.Grid(p.rows, p.cols, p.maxW, p.seed)
	case "rating":
		rg, err := gen.Rating(gen.DefaultRating(p.users, p.items, p.ratings, p.seed))
		if err != nil {
			return nil, err
		}
		return rg.Graph, nil
	case "dataset":
		d, err := gen.Lookup(p.name)
		if err != nil {
			return nil, err
		}
		if d.Kind == gen.RatingKind {
			rg, err := d.BuildRating(p.shrink)
			if err != nil {
				return nil, err
			}
			return rg.Graph, nil
		}
		return d.BuildSocial(p.shrink, p.maxW > 0)
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}
