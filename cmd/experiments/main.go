// Command experiments regenerates the tables and figures of the
// GraphABCD paper's evaluation (Sec. V) on the synthetic dataset analogs.
//
// Usage:
//
//	experiments all
//	experiments -shrink 3 fig4 table3
//	experiments -shrink 0 table2        # full analog sizes (slow)
//
// Each experiment prints the rows the paper's corresponding table/figure
// reports; EXPERIMENTS.md records a full run next to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphabcd/internal/exp"
)

var experiments = []struct {
	name string
	desc string
	run  func(exp.Options) error
}{
	{"table1", "dataset analogs vs the paper's Table I", func(o exp.Options) error {
		_, err := exp.Table1(o)
		return err
	}},
	{"fig4", "convergence vs block size and policy (normalized to BSP)", func(o exp.Options) error {
		_, err := exp.Fig4(o)
		return err
	}},
	{"table2", "execution time and MTEPS vs GraphMat and ASIC", func(o exp.Options) error {
		_, err := exp.Table2(o)
		return err
	}},
	{"table3", "iteration counts: priority / cyclic / GraphMat", func(o exp.Options) error {
		_, err := exp.Table3(o)
		return err
	}},
	{"fig5", "CF RMSE convergence curves", func(o exp.Options) error {
		_, err := exp.Fig5(o)
		return err
	}},
	{"fig6", "hardware acceleration vs software cost model", func(o exp.Options) error {
		_, err := exp.Fig6(o)
		return err
	}},
	{"fig7", "async vs barrier vs BSP speedup breakdown", func(o exp.Options) error {
		_, err := exp.Fig7(o)
		return err
	}},
	{"fig8", "PE utilization vs PE count", func(o exp.Options) error {
		_, err := exp.Fig8(o)
		return err
	}},
	{"fig9", "memory traffic breakdown and bus utilization", func(o exp.Options) error {
		_, _, err := exp.Fig9(o)
		return err
	}},
	{"fig10", "scalability in PEs and CPU threads, hybrid on/off", func(o exp.Options) error {
		_, err := exp.Fig10(o)
		return err
	}},
	{"table4", "accelerator resource footprint (FPGA-table substitute)", func(o exp.Options) error {
		_, err := exp.Table4(o)
		return err
	}},
	{"ablation-operator", "pull vs push vs pull-push traffic (Sec. IV-A2)", func(o exp.Options) error {
		_, err := exp.AblationOperator(o)
		return err
	}},
	{"ablation-staleness", "queue depth (bounded staleness) vs convergence", func(o exp.Options) error {
		_, err := exp.AblationStaleness(o)
		return err
	}},
	{"ablation-policy", "cyclic vs random vs priority block selection", func(o exp.Options) error {
		_, err := exp.AblationPolicy(o)
		return err
	}},
	{"scaleout", "distributed nodes: convergence preserved as the system scales out", func(o exp.Options) error {
		_, err := exp.ScaleOut(o)
		return err
	}},
	{"ablation-storage", "in-memory vs out-of-core vs compressed edge storage", func(o exp.Options) error {
		_, err := exp.AblationStorage(o)
		return err
	}},
}

func main() {
	shrink := flag.Int("shrink", 2, "dataset scale-down exponent (0 = full analogs)")
	threads := flag.Int("threads", 0, "host threads (0 = GOMAXPROCS)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] <experiment>... | all\n\nexperiments:\n")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opt := exp.Options{Shrink: *shrink, Threads: *threads, Out: os.Stdout}

	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	ran := 0
	for _, e := range experiments {
		if !want["all"] && !want[e.name] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		if err := e.run(opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
		delete(want, e.name)
	}
	delete(want, "all")
	if len(want) > 0 && ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment(s): %v\n", keys(want))
		os.Exit(2)
	}
	for k := range want {
		fmt.Fprintf(os.Stderr, "experiments: warning: unknown experiment %q skipped\n", k)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
