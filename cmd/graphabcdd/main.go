// Command graphabcdd is the long-lived graph-analytics server: it keeps a
// pool of graph snapshots warm in memory and executes analytics jobs over
// HTTP instead of paying a process start and graph load per run.
//
//	graphabcdd -addr :8090 -graphs /data/snapshots -preload LJ,WT
//
// The API is job-oriented:
//
//	POST   /v1/jobs             submit {"algorithm":"pagerank","graph":"LJ"}
//	GET    /v1/jobs/{id}        poll state, stats, and values
//	GET    /v1/jobs/{id}/events stream progress (SSE: epoch/residual/done)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/query            point queries (sssp distances, cc component,
//	                            personalized pagerank top-k)
//	GET    /v1/algorithms       the algorithm registry, with parameters
//	GET    /v1/graphs           the snapshot inventory and resident set
//
// Results are cached per (graph epoch, algorithm, parameters): a repeated
// job answers from memory. Admission control is per-tenant (X-Tenant
// header) token buckets plus a bounded queue; rejections are 429/503 and
// a saturated queue also flips /readyz, as do graph loads. With -ckpt-dir
// set, jobs submitted with "durable": true are journaled and checkpointed,
// and a restarted server resumes them from the last committed epoch.
//
//	graphabcdd -addr :8090 -graphs /data -ckpt-dir /ckpt -tenant-rate 2 -tenant-burst 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"graphabcd"
	"graphabcd/internal/obslog"
	"graphabcd/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphabcdd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:8090", "HTTP listen address")
		graphsDir = flag.String("graphs", ".", "snapshot directory the graph pool serves from (.gabs/.gabz)")
		memBudget = flag.Int64("mem-budget", 0, "graph pool memory budget in bytes (0 = unlimited)")
		preload   = flag.String("preload", "", "comma-separated graph names to load before serving")

		maxRunning = flag.Int("max-running", 2, "jobs executing concurrently")
		queueDepth = flag.Int("queue", 64, "queued-job backlog bound (full queue answers 503)")
		rate       = flag.Float64("tenant-rate", 0, "per-tenant admission tokens per second")
		burst      = flag.Int("tenant-burst", 0, "per-tenant token bucket size (0 = no limiting)")
		cacheSize  = flag.Int("cache-entries", 256, "result cache capacity (negative disables)")

		ckptDir  = flag.String("ckpt-dir", "", "durable jobs: journal and checkpoint directory")
		ckptIntv = flag.Duration("ckpt-interval", 5*time.Second, "durable jobs: checkpoint period")

		blockSize = flag.Int("block", 0, "default engine block size (0 = |V|/256 heuristic)")
		pes       = flag.Int("pes", 0, "default gather-apply workers per job (0 = engine default)")

		logLevel  = flag.String("log-level", "info", "structured logging level: debug | info | warn | error (empty disables)")
		logFormat = flag.String("log-format", "text", "structured log encoding: text | json")
	)
	flag.Parse()

	if *logLevel != "" {
		lvl, ok := obslog.ParseLevel(*logLevel)
		if !ok {
			return fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", *logLevel)
		}
		if !obslog.Init(lvl, *logFormat, os.Stderr, slog.String("role", "server")) {
			return fmt.Errorf("unknown -log-format %q (want text|json)", *logFormat)
		}
	}
	log := obslog.L()

	var base *graphabcd.Config
	if *blockSize > 0 || *pes > 0 {
		cfg := graphabcd.DefaultConfig(*blockSize)
		if *pes > 0 {
			cfg.NumPEs = *pes
		}
		base = &cfg
	}

	srv, err := serve.New(serve.Options{
		GraphDir:           *graphsDir,
		MemoryBudget:       *memBudget,
		MaxRunning:         *maxRunning,
		QueueDepth:         *queueDepth,
		TenantRate:         *rate,
		TenantBurst:        *burst,
		CacheEntries:       *cacheSize,
		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptIntv,
		EngineDefaults:     base,
		Preload:            splitList(*preload),
		Log:                log,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		errCh <- httpSrv.Serve(ln)
	}()
	defer wg.Wait()
	fmt.Printf("graphabcdd serving on http://%s (graphs: %s)\n", ln.Addr(), *graphsDir)
	log.Info("serving", "addr", ln.Addr().String(), "graphs", *graphsDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
	case err := <-errCh:
		srv.Close()
		return err
	}

	// Drain politely, then cut long-lived SSE streams and stop the jobs.
	// In-flight durable jobs stay resumable: Close writes no terminal
	// journal records during shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		_ = httpSrv.Close()
	}
	srv.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("graphabcdd stopped")
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
